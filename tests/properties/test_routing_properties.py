"""Hypothesis property tests for routing and VDPS generation."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.core.entities import DeliveryPoint, DistributionCenter, SpatialTask
from repro.core.routing import best_route, brute_force_best_route
from repro.geo.point import Point
from repro.geo.travel import TravelModel
from repro.vdps.generator import generate_cvdps, generate_cvdps_reference

TRAVEL = TravelModel(speed_kmh=1.0)
ORIGIN = Point(0.0, 0.0)

coordinate = st.floats(min_value=-5.0, max_value=5.0, allow_nan=False)
expiry = st.floats(min_value=0.5, max_value=12.0, allow_nan=False)


@st.composite
def delivery_points(draw, max_points=5):
    n = draw(st.integers(min_value=1, max_value=max_points))
    points = []
    for i in range(n):
        dp_id = f"p{i}"
        points.append(
            DeliveryPoint(
                dp_id,
                Point(draw(coordinate), draw(coordinate)),
                (SpatialTask(f"t{i}", dp_id, expiry=draw(expiry)),),
            )
        )
    return points


class TestBestRouteProperties:
    @given(points=delivery_points())
    @settings(max_examples=40, deadline=None)
    def test_matches_brute_force(self, points):
        fast = best_route(ORIGIN, points, TRAVEL)
        slow = brute_force_best_route(ORIGIN, points, TRAVEL)
        if slow is None:
            assert fast is None
        else:
            assert fast is not None
            assert fast.completion_time == pytest.approx(slow.completion_time)

    @given(points=delivery_points(), offset=st.floats(0.0, 3.0))
    @settings(max_examples=40, deadline=None)
    def test_offset_monotone(self, points, offset):
        # If a set is feasible with a delay it is feasible without one.
        with_offset = best_route(ORIGIN, points, TRAVEL, start_offset=offset)
        without = best_route(ORIGIN, points, TRAVEL)
        if with_offset is not None:
            assert without is not None
            assert without.completion_time <= with_offset.completion_time + 1e-9

    @given(points=delivery_points())
    @settings(max_examples=40, deadline=None)
    def test_route_visits_all_points_feasibly(self, points):
        route = best_route(ORIGIN, points, TRAVEL)
        if route is None:
            return
        assert {dp.dp_id for dp in route.sequence} == {dp.dp_id for dp in points}
        assert route.is_valid_with_offset(0.0)
        # Completion is at least the direct distance to the farthest point.
        direct = max(TRAVEL.time(ORIGIN, dp.location) for dp in points)
        assert route.completion_time >= direct - 1e-9


class TestCVdpsProperties:
    @given(
        points=delivery_points(max_points=5),
        epsilon=st.one_of(st.none(), st.floats(0.5, 8.0)),
    )
    @settings(max_examples=25, deadline=None)
    def test_fast_generator_equals_reference(self, points, epsilon):
        center = DistributionCenter("dc", ORIGIN, tuple(points))
        fast = generate_cvdps(center, TRAVEL, epsilon=epsilon)
        slow = generate_cvdps_reference(center, TRAVEL, epsilon=epsilon)
        assert [e.point_ids for e in fast] == [e.point_ids for e in slow]
        for f, s in zip(fast, slow):
            assert f.route.completion_time == pytest.approx(s.route.completion_time)

    @given(points=delivery_points(max_points=5))
    @settings(max_examples=25, deadline=None)
    def test_subset_closure_of_feasibility(self, points):
        # Every singleton subset of a C-VDPS is itself a C-VDPS (removing
        # points never hurts feasibility of the remaining *first* point).
        center = DistributionCenter("dc", ORIGIN, tuple(points))
        entries = {e.point_ids for e in generate_cvdps(center, TRAVEL)}
        singletons = {next(iter(s)) for s in entries if len(s) == 1}
        for subset in entries:
            first_id = min(subset)
            del first_id  # arbitrary member; the check below covers all
            for dp_id in subset:
                dp = next(p for p in points if p.dp_id == dp_id)
                if TRAVEL.time(ORIGIN, dp.location) <= dp.earliest_expiry:
                    assert dp_id in singletons
