"""Hypothesis property tests for the dispatch simulator."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.baselines.gta import GTASolver
from repro.geo.travel import TravelModel
from repro.sim.arrivals import PoissonTaskArrivals
from repro.sim.platform import DispatchSimulator, SimConfig

from tests.conftest import make_center, make_dp, make_worker


def _simulator(n_points, n_workers, rate, horizon, interval):
    points = [
        make_dp(f"p{i}", 0.5 + 0.4 * i, 0.3 * (i % 3), n_tasks=1)
        for i in range(n_points)
    ]
    center = make_center(points)
    workers = [make_worker(f"w{i}", 0.1 * i, 0.0, max_dp=2) for i in range(n_workers)]
    arrivals = PoissonTaskArrivals(points, rate_per_hour=rate, patience=(0.5, 1.5))
    return DispatchSimulator(
        center,
        workers,
        arrivals,
        GTASolver(),
        travel=TravelModel(),
        config=SimConfig(horizon_hours=horizon, round_interval_hours=interval),
    )


sim_params = {
    "n_points": st.integers(1, 5),
    "n_workers": st.integers(1, 4),
    "rate": st.floats(1.0, 40.0),
    "seed": st.integers(0, 50),
}


class TestSimulatorInvariants:
    @given(**sim_params)
    @settings(max_examples=15, deadline=None)
    def test_task_accounting_bounded(self, n_points, n_workers, rate, seed):
        report = _simulator(n_points, n_workers, rate, 2.0, 0.5).run(seed=seed)
        assert report.completed_tasks >= 0
        assert report.expired_tasks >= 0
        assert report.completed_tasks + report.expired_tasks <= report.arrived_tasks
        assert 0.0 <= report.completion_rate <= 1.0

    @given(**sim_params)
    @settings(max_examples=15, deadline=None)
    def test_round_count_exact(self, n_points, n_workers, rate, seed):
        report = _simulator(n_points, n_workers, rate, 2.0, 0.5).run(seed=seed)
        assert len(report.rounds) == 4

    @given(**sim_params)
    @settings(max_examples=10, deadline=None)
    def test_worker_accounting_consistent(self, n_points, n_workers, rate, seed):
        report = _simulator(n_points, n_workers, rate, 2.0, 0.5).run(seed=seed)
        total_deliveries = sum(w.deliveries for w in report.worker_states)
        assert total_deliveries == report.completed_tasks
        for w in report.worker_states:
            assert w.earnings >= 0
            assert w.working_hours >= 0
            assert (w.assignments == 0) == (w.working_hours == 0)

    @given(**sim_params)
    @settings(max_examples=10, deadline=None)
    def test_determinism(self, n_points, n_workers, rate, seed):
        a = _simulator(n_points, n_workers, rate, 1.0, 0.5).run(seed=seed)
        b = _simulator(n_points, n_workers, rate, 1.0, 0.5).run(seed=seed)
        assert a.describe() == b.describe()
