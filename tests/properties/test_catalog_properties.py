"""Hypothesis property tests for VDPS catalogs."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.entities import DeliveryPoint, DistributionCenter, SpatialTask, Worker
from repro.core.instance import SubProblem
from repro.geo.point import Point
from repro.geo.travel import TravelModel
from repro.vdps.catalog import build_catalog

TRAVEL = TravelModel(speed_kmh=1.0)

coordinate = st.floats(min_value=-4.0, max_value=4.0, allow_nan=False)


@st.composite
def subproblems(draw):
    n_points = draw(st.integers(1, 5))
    points = []
    for i in range(n_points):
        dp_id = f"p{i}"
        tasks = tuple(
            SpatialTask(f"t{i}_{k}", dp_id, expiry=draw(st.floats(0.5, 10.0)))
            for k in range(draw(st.integers(1, 3)))
        )
        points.append(
            DeliveryPoint(dp_id, Point(draw(coordinate), draw(coordinate)), tasks)
        )
    center = DistributionCenter("dc", Point(0, 0), tuple(points))
    workers = tuple(
        Worker(
            f"w{j}",
            Point(draw(coordinate), draw(coordinate)),
            max_delivery_points=draw(st.integers(1, 3)),
            center_id="dc",
        )
        for j in range(draw(st.integers(1, 3)))
    )
    return SubProblem(center, workers, TRAVEL)


class TestCatalogInvariants:
    @given(sub=subproblems(), epsilon=st.one_of(st.none(), st.floats(0.5, 10.0)))
    @settings(max_examples=30, deadline=None)
    def test_strategies_sorted_and_valid(self, sub, epsilon):
        catalog = build_catalog(sub, epsilon=epsilon)
        for worker in catalog.workers:
            payoffs = [s.payoff for s in catalog.strategies(worker.worker_id)]
            assert payoffs == sorted(payoffs, reverse=True)
            for strategy in catalog.strategies(worker.worker_id):
                assert strategy.size <= worker.max_delivery_points
                assert strategy.payoff > 0
                assert strategy.route.is_valid_with_offset(0.0)
                assert len(strategy.point_ids) == len(strategy.route.sequence)

    @given(sub=subproblems())
    @settings(max_examples=20, deadline=None)
    def test_pruning_never_adds_strategies(self, sub):
        unpruned = build_catalog(sub, epsilon=None)
        pruned = build_catalog(sub, epsilon=1.0)
        for worker in unpruned.workers:
            unpruned_sets = {
                s.point_ids for s in unpruned.strategies(worker.worker_id)
            }
            pruned_sets = {s.point_ids for s in pruned.strategies(worker.worker_id)}
            assert pruned_sets <= unpruned_sets

    @given(sub=subproblems())
    @settings(max_examples=20, deadline=None)
    def test_available_is_conflict_free(self, sub):
        catalog = build_catalog(sub)
        for worker in catalog.workers:
            strategies = catalog.strategies(worker.worker_id)
            if not strategies:
                continue
            claimed = frozenset(strategies[0].point_ids)
            for s in catalog.available(worker.worker_id, claimed):
                assert not (s.point_ids & claimed)

    @given(sub=subproblems())
    @settings(max_examples=15, deadline=None)
    def test_payoff_consistent_with_route(self, sub):
        catalog = build_catalog(sub)
        for worker in catalog.workers:
            for s in catalog.strategies(worker.worker_id):
                expected = s.route.total_reward / s.route.completion_time
                assert abs(s.payoff - expected) < 1e-9
