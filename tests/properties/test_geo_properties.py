"""Hypothesis property tests for the geometry substrate."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.geo.distance import chebyshev, euclidean, manhattan
from repro.geo.index import GridIndex
from repro.geo.point import Point
from repro.viz.charts import nice_ticks

coordinate = st.floats(min_value=-100.0, max_value=100.0, allow_nan=False)
points = st.builds(Point, coordinate, coordinate)


class TestMetricProperties:
    @given(a=points, b=points)
    def test_metric_ordering(self, a, b):
        # Chebyshev <= Euclidean <= Manhattan, always.
        assert chebyshev(a, b) <= euclidean(a, b) + 1e-9
        assert euclidean(a, b) <= manhattan(a, b) + 1e-9

    @given(a=points, b=points, c=points)
    @settings(max_examples=60)
    def test_triangle_inequality(self, a, b, c):
        for metric in (euclidean, manhattan, chebyshev):
            assert metric(a, c) <= metric(a, b) + metric(b, c) + 1e-6

    @given(a=points, b=points)
    def test_symmetry_and_identity(self, a, b):
        for metric in (euclidean, manhattan, chebyshev):
            assert metric(a, b) == pytest.approx(metric(b, a))
            assert metric(a, a) == 0.0


class TestGridIndexProperties:
    # Cell sizes are bounded below: the ring search visits O((radius/cell)^2)
    # cells per query, so adversarially tiny cells over the +-100 coordinate
    # span would make the test quadratic-slow without testing anything new.
    @given(
        items=st.lists(points, min_size=1, max_size=40),
        center=points,
        radius=st.floats(0.0, 60.0),
        cell=st.floats(2.0, 20.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_within_matches_brute_force(self, items, center, radius, cell):
        index = GridIndex.build([(p, i) for i, p in enumerate(items)], cell_size=cell)
        expected = sorted(
            i for i, p in enumerate(items) if center.distance_to(p) <= radius
        )
        assert sorted(index.within(center, radius)) == expected

    @given(
        items=st.lists(points, min_size=1, max_size=40),
        center=points,
        cell=st.floats(2.0, 20.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_nearest_matches_brute_force(self, items, center, cell):
        index = GridIndex.build([(p, i) for i, p in enumerate(items)], cell_size=cell)
        got = index.nearest(center)
        best = min(center.distance_to(p) for p in items)
        assert center.distance_to(items[got]) == pytest.approx(best)


class TestNiceTicksProperties:
    @given(
        lo=st.floats(-1e5, 1e5, allow_nan=False),
        span=st.floats(1e-3, 1e5, allow_nan=False),
    )
    @settings(max_examples=60)
    def test_ticks_cover_range_uniformly(self, lo, span):
        hi = lo + span
        ticks = nice_ticks(lo, hi)
        assert 2 <= len(ticks) <= 7
        assert ticks == sorted(ticks)
        assert ticks[0] >= lo - span
        assert ticks[-1] <= hi + span
        steps = [round(b - a, 9) for a, b in zip(ticks, ticks[1:])]
        assert max(steps) - min(steps) <= 1e-6 * max(abs(lo), abs(hi), 1.0)
