"""Hypothesis stateful tests: DeltaCatalog ≡ from-scratch rebuild under churn.

The incremental catalog's correctness claim is *exact* equality — same
strategies, same payoffs, same :class:`CatalogIndex` bit layout — with a
``build_catalog`` rebuild after **every** churn step, not just at the end.
The state machine below interleaves task arrivals, expiries, deadline
moves, delivery-point removal/re-insertion, and worker churn (join, leave,
move, capacity change), and asserts that invariant after each rule via
:func:`catalog_diff`.  ``rebuild_fraction=10`` forces the delta path even
when a rule churns a large fraction of a tiny center, so the surgery code
(not the rebuild fallback) is what gets exercised.
"""

import hypothesis.strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from repro.core.entities import DeliveryPoint, DistributionCenter, SpatialTask, Worker
from repro.core.instance import SubProblem
from repro.geo.point import Point
from repro.geo.travel import TravelModel
from repro.vdps.catalog import build_catalog
from repro.vdps.delta import DeltaCatalog, catalog_diff

TRAVEL = TravelModel(speed_kmh=1.0)
EPSILON = 2.5

coordinate = st.floats(min_value=-3.0, max_value=3.0, allow_nan=False)
expiry = st.floats(min_value=0.2, max_value=12.0, allow_nan=False)


class CatalogChurnMachine(RuleBasedStateMachine):
    """Random churn over one center, delta-maintained vs rebuilt fresh."""

    def __init__(self):
        super().__init__()
        self.points = {}
        self.workers = {}
        self.next_dp = 0
        self.next_task = 0
        self.next_worker = 0
        self.delta = None

    # -- world assembly ----------------------------------------------------

    def _sub(self):
        center = DistributionCenter(
            "dc", Point(0.0, 0.0), tuple(self.points.values())
        )
        return SubProblem(center, tuple(self.workers.values()), TRAVEL)

    def _task(self, dp_id, exp):
        self.next_task += 1
        return SpatialTask(f"t{self.next_task}", dp_id, exp)

    @initialize(
        xs=st.lists(coordinate, min_size=1, max_size=4),
        wx=coordinate,
        wy=coordinate,
        cap=st.integers(1, 3),
    )
    def seed_world(self, xs, wx, wy, cap):
        for x in xs:
            dp_id = f"p{self.next_dp}"
            self.next_dp += 1
            self.points[dp_id] = DeliveryPoint(
                dp_id, Point(x, 1.0), (self._task(dp_id, 6.0),)
            )
        self.workers["w0"] = Worker(
            "w0", Point(wx, wy), max_delivery_points=cap, center_id="dc"
        )
        self.next_worker = 1
        self.delta = DeltaCatalog(
            self._sub(), epsilon=EPSILON, rebuild_fraction=10.0
        )

    # -- delivery-point churn ----------------------------------------------

    @rule(x=coordinate, y=coordinate, exp=expiry, data=st.data())
    def task_arrives(self, x, y, exp, data):
        """A task lands: on an existing point, or founding a new one."""
        if self.points and data.draw(st.booleans(), label="existing point"):
            dp_id = data.draw(
                st.sampled_from(sorted(self.points)), label="target"
            )
            dp = self.points[dp_id]
            self.points[dp_id] = dp.with_tasks(
                dp.tasks + (self._task(dp_id, exp),)
            )
        else:
            dp_id = f"p{self.next_dp}"
            self.next_dp += 1
            self.points[dp_id] = DeliveryPoint(
                dp_id, Point(x, y), (self._task(dp_id, exp),)
            )

    @rule(data=st.data())
    def task_expires(self, data):
        """Drop one task; the point stays, possibly with an empty queue."""
        with_tasks = sorted(p for p, dp in self.points.items() if dp.tasks)
        if not with_tasks:
            return
        dp_id = data.draw(st.sampled_from(with_tasks), label="target")
        dp = self.points[dp_id]
        self.points[dp_id] = dp.with_tasks(dp.tasks[1:])

    @rule(exp=expiry, data=st.data())
    def deadline_moves(self, exp, data):
        """Rewrite one task's expiry in place (same id, new deadline)."""
        with_tasks = sorted(p for p, dp in self.points.items() if dp.tasks)
        if not with_tasks:
            return
        dp_id = data.draw(st.sampled_from(with_tasks), label="target")
        dp = self.points[dp_id]
        moved = SpatialTask(dp.tasks[0].task_id, dp_id, exp, dp.tasks[0].reward)
        self.points[dp_id] = dp.with_tasks((moved,) + dp.tasks[1:])

    @rule(data=st.data())
    def point_removed(self, data):
        """A delivery point disappears entirely."""
        if not self.points:
            return
        dp_id = data.draw(st.sampled_from(sorted(self.points)), label="target")
        del self.points[dp_id]

    @rule(x=coordinate, y=coordinate, exp=expiry, data=st.data())
    def point_returns(self, x, y, exp, data):
        """A removed id re-enters at a (possibly) different location."""
        recycled = [f"p{i}" for i in range(self.next_dp)]
        candidates = sorted(set(recycled) - set(self.points))
        if not candidates:
            return
        dp_id = data.draw(st.sampled_from(candidates), label="target")
        self.points[dp_id] = DeliveryPoint(
            dp_id, Point(x, y), (self._task(dp_id, exp),)
        )

    # -- worker churn ------------------------------------------------------

    @rule(x=coordinate, y=coordinate, cap=st.integers(1, 4))
    def worker_joins(self, x, y, cap):
        wid = f"w{self.next_worker}"
        self.next_worker += 1
        self.workers[wid] = Worker(
            wid, Point(x, y), max_delivery_points=cap, center_id="dc"
        )

    @rule(data=st.data())
    def worker_leaves(self, data):
        if len(self.workers) <= 1:
            return  # keep the catalog non-degenerate
        wid = data.draw(st.sampled_from(sorted(self.workers)), label="target")
        del self.workers[wid]

    @rule(x=coordinate, y=coordinate, data=st.data())
    def worker_moves(self, x, y, data):
        if not self.workers:
            return
        wid = data.draw(st.sampled_from(sorted(self.workers)), label="target")
        w = self.workers[wid]
        self.workers[wid] = Worker(
            wid, Point(x, y), w.max_delivery_points, w.center_id
        )

    @rule(cap=st.integers(1, 5), data=st.data())
    def worker_capacity_changes(self, cap, data):
        """maxDP growth exercises _extend_cap; shrink the size filter."""
        if not self.workers:
            return
        wid = data.draw(st.sampled_from(sorted(self.workers)), label="target")
        w = self.workers[wid]
        self.workers[wid] = Worker(wid, w.location, cap, w.center_id)

    # -- the oracle --------------------------------------------------------

    @invariant()
    def delta_equals_rebuild(self):
        """After every rule: refresh ≡ build_catalog, bit for bit."""
        if self.delta is None:
            return
        sub = self._sub()
        refreshed = self.delta.refresh(sub)
        rebuilt = build_catalog(sub, epsilon=EPSILON)
        diffs = catalog_diff(refreshed, rebuilt)
        assert not diffs, "; ".join(diffs)


# Budget comes from the active Hypothesis profile (tests/conftest.py):
# 30 examples x 20 steps locally, 15 x 15 under --hypothesis-profile=ci.
TestCatalogChurn = CatalogChurnMachine.TestCase
