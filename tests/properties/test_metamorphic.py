"""Metamorphic relations every solver must satisfy on random instances.

Three relations with *exact* float arithmetic by construction:

* Scaling every task reward by a power of two multiplies every payoff by
  exactly that factor (Equation 1 is homogeneous in rewards, and scaling a
  float by a power of two is exact) and leaves strategy choices unchanged.
* Translating every coordinate by an integer vector leaves the assignment
  bit-identical: coordinates live on a coarse dyadic grid, so translated
  differences — and with them every distance, arrival time, and payoff —
  are exactly preserved.
* Adding a delivery point whose tasks are already expired is a no-op: it
  can never join a VDPS, so catalogs and assignments are unchanged.
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.baselines.gta import GTASolver
from repro.baselines.mpta import MPTASolver
from repro.core.entities import DeliveryPoint, DistributionCenter, SpatialTask, Worker
from repro.core.instance import SubProblem
from repro.games.fgt import FGTSolver
from repro.games.iegt import IEGTSolver
from repro.geo.point import Point
from repro.geo.travel import TravelModel

TRAVEL = TravelModel(speed_kmh=1.0)

SOLVERS = [
    GTASolver(),
    FGTSolver(max_rounds=60),
    IEGTSolver(max_rounds=120),
    MPTASolver(node_budget=20_000),
]

# Dyadic grid: multiples of 0.25 in [-4, 4] are exact doubles, and stay
# exact under the integer translations drawn below.
grid_coordinate = st.integers(-16, 16).map(lambda k: k * 0.25)


@st.composite
def instance_specs(draw):
    """A plain-data sub-problem spec the tests can rebuild with tweaks."""
    n_points = draw(st.integers(2, 4))
    n_workers = draw(st.integers(1, 3))
    points = [
        {
            "dp_id": f"p{i}",
            "x": draw(grid_coordinate),
            "y": draw(grid_coordinate),
            "n_tasks": draw(st.integers(1, 3)),
            "expiry": float(draw(st.integers(2, 12))),
        }
        for i in range(n_points)
    ]
    workers = [
        {
            "worker_id": f"w{j}",
            "x": draw(grid_coordinate),
            "y": draw(grid_coordinate),
            "max_dp": draw(st.integers(1, 3)),
        }
        for j in range(n_workers)
    ]
    return {"points": points, "workers": workers}


def build_sub(spec, reward=1.0, dx=0.0, dy=0.0, extra_point=None) -> SubProblem:
    dps = [
        DeliveryPoint(
            p["dp_id"],
            Point(p["x"] + dx, p["y"] + dy),
            tuple(
                SpatialTask(
                    f"{p['dp_id']}_t{k}", p["dp_id"], expiry=p["expiry"], reward=reward
                )
                for k in range(p["n_tasks"])
            ),
        )
        for p in spec["points"]
    ]
    if extra_point is not None:
        dps.append(extra_point)
    center = DistributionCenter("dc", Point(dx, dy), tuple(dps))
    workers = tuple(
        Worker(
            w["worker_id"],
            Point(w["x"] + dx, w["y"] + dy),
            max_delivery_points=w["max_dp"],
            center_id="dc",
        )
        for w in spec["workers"]
    )
    return SubProblem(center, workers, TRAVEL)


def routes_of(result):
    return result.assignment.as_mapping()


class TestMetamorphic:
    @given(
        spec=instance_specs(),
        scale_exp=st.integers(-2, 3),
        seed=st.integers(0, 5),
    )
    @settings(max_examples=15, deadline=None)
    def test_reward_scaling_scales_payoffs_linearly(self, spec, scale_exp, seed):
        factor = 2.0**scale_exp
        base = build_sub(spec)
        scaled = build_sub(spec, reward=factor)
        for solver in SOLVERS:
            before = solver.solve(base, seed=seed)
            after = solver.solve(scaled, seed=seed)
            assert routes_of(before) == routes_of(after)
            assert after.assignment.payoffs == [
                p * factor for p in before.assignment.payoffs
            ]

    @given(
        spec=instance_specs(),
        dx=st.integers(-16, 16),
        dy=st.integers(-16, 16),
        seed=st.integers(0, 5),
    )
    @settings(max_examples=15, deadline=None)
    def test_translation_leaves_assignments_identical(self, spec, dx, dy, seed):
        base = build_sub(spec)
        moved = build_sub(spec, dx=float(dx), dy=float(dy))
        for solver in SOLVERS:
            before = solver.solve(base, seed=seed)
            after = solver.solve(moved, seed=seed)
            assert routes_of(before) == routes_of(after)
            assert before.assignment.payoffs == after.assignment.payoffs

    @given(spec=instance_specs(), seed=st.integers(0, 5))
    @settings(max_examples=15, deadline=None)
    def test_expired_delivery_point_is_a_noop(self, spec, seed):
        # 100 km out at speed 1 km/h with a 0.001 h expiry: unreachable as
        # a first stop and a fortiori as any later stop, so no VDPS can
        # ever contain it (Definition 6).
        dead = DeliveryPoint(
            "dead",
            Point(100.0, 100.0),
            (SpatialTask("dead_t0", "dead", expiry=0.001),),
        )
        base = build_sub(spec)
        padded = build_sub(spec, extra_point=dead)
        for solver in SOLVERS:
            before = solver.solve(base, seed=seed)
            after = solver.solve(padded, seed=seed)
            assert routes_of(before) == routes_of(after)
            assert before.assignment.payoffs == after.assignment.payoffs
