"""Hypothesis property tests for payoff statistics."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.core.fairness import InequityAversion, gini_coefficient, jain_index
from repro.core.payoff import (
    average_payoff,
    payoff_difference,
    payoff_difference_naive,
)

payoff_lists = st.lists(
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False),
    min_size=0,
    max_size=50,
)

nonempty_payoffs = st.lists(
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False),
    min_size=2,
    max_size=50,
)


class TestPayoffDifference:
    @given(values=payoff_lists)
    def test_fast_equals_naive(self, values):
        assert payoff_difference(values) == pytest.approx(
            payoff_difference_naive(values), rel=1e-9, abs=1e-9
        )

    @given(values=nonempty_payoffs)
    def test_non_negative(self, values):
        assert payoff_difference(values) >= 0.0

    @given(values=nonempty_payoffs, shift=st.floats(-1e5, 1e5))
    def test_shift_invariant(self, values, shift):
        shifted = [v + shift for v in values]
        assert payoff_difference(values) == pytest.approx(
            payoff_difference(shifted), rel=1e-6, abs=1e-6
        )

    @given(values=nonempty_payoffs, scale=st.floats(0.0, 100.0))
    def test_scale_equivariant(self, values, scale):
        assert payoff_difference([scale * v for v in values]) == pytest.approx(
            scale * payoff_difference(values), rel=1e-6, abs=1e-6
        )

    @given(values=nonempty_payoffs)
    def test_bounded_by_range(self, values):
        assert payoff_difference(values) <= (max(values) - min(values)) + 1e-9

    @given(value=st.floats(0, 1e6), n=st.integers(2, 30))
    def test_identical_values_zero(self, value, n):
        assert payoff_difference([value] * n) == 0.0


class TestAveragePayoff:
    @given(values=nonempty_payoffs)
    def test_between_min_and_max(self, values):
        avg = average_payoff(values)
        assert min(values) - 1e-9 <= avg <= max(values) + 1e-9


class TestFairnessIndices:
    @given(values=nonempty_payoffs)
    def test_gini_bounds(self, values):
        assert 0.0 <= gini_coefficient(values) <= 1.0 + 1e-12

    @given(values=nonempty_payoffs)
    def test_jain_bounds(self, values):
        j = jain_index(values)
        assert 0.0 < j <= 1.0 + 1e-12

    @given(values=nonempty_payoffs)
    def test_iau_never_exceeds_payoff(self, values):
        # Both penalty terms are non-negative, so IAU <= raw payoff.
        model = InequityAversion(0.5, 0.5)
        utilities = model.utilities(values)
        for u, p in zip(utilities, values):
            assert u <= p + 1e-9

    @given(values=nonempty_payoffs)
    def test_iau_vectorised_matches_scalar(self, values):
        model = InequityAversion(0.7, 0.3)
        utilities = model.utilities(values)
        for i in range(len(values)):
            assert utilities[i] == pytest.approx(
                model.utility(i, values), rel=1e-9, abs=1e-6
            )
