"""Hypothesis property tests over whole solvers on random instances."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.baselines.gta import GTASolver
from repro.baselines.mpta import MPTASolver
from repro.core.entities import DeliveryPoint, DistributionCenter, SpatialTask, Worker
from repro.core.instance import SubProblem
from repro.games.fgt import FGTSolver
from repro.games.iegt import IEGTSolver
from repro.geo.point import Point
from repro.geo.travel import TravelModel
from repro.vdps.catalog import build_catalog

TRAVEL = TravelModel(speed_kmh=1.0)

coordinate = st.floats(min_value=-4.0, max_value=4.0, allow_nan=False)


@st.composite
def subproblems(draw):
    n_points = draw(st.integers(2, 5))
    n_workers = draw(st.integers(1, 4))
    points = []
    for i in range(n_points):
        dp_id = f"p{i}"
        n_tasks = draw(st.integers(1, 4))
        expiry = draw(st.floats(1.0, 10.0))
        tasks = tuple(
            SpatialTask(f"t{i}_{k}", dp_id, expiry=expiry) for k in range(n_tasks)
        )
        points.append(
            DeliveryPoint(dp_id, Point(draw(coordinate), draw(coordinate)), tasks)
        )
    center = DistributionCenter("dc", Point(0, 0), tuple(points))
    workers = tuple(
        Worker(
            f"w{j}",
            Point(draw(coordinate), draw(coordinate)),
            max_delivery_points=draw(st.integers(1, 3)),
            center_id="dc",
        )
        for j in range(n_workers)
    )
    return SubProblem(center, workers, TRAVEL)


SOLVERS = [
    GTASolver(),
    MPTASolver(node_budget=20_000),
    FGTSolver(max_rounds=60),
    IEGTSolver(max_rounds=120),
]


class TestSolverInvariants:
    @given(sub=subproblems(), seed=st.integers(0, 10))
    @settings(max_examples=25, deadline=None)
    def test_assignments_always_valid(self, sub, seed):
        # Assignment construction re-validates disjointness, deadlines, and
        # maxDP, so solving without an exception is the property.
        catalog = build_catalog(sub)
        for solver in SOLVERS:
            result = solver.solve(sub, catalog=catalog, seed=seed)
            assert len(result.assignment) == len(sub.online_workers)

    @given(sub=subproblems(), seed=st.integers(0, 10))
    @settings(max_examples=25, deadline=None)
    def test_mpta_dominates_total_payoff(self, sub, seed):
        catalog = build_catalog(sub)
        mpta = MPTASolver(node_budget=20_000).solve(sub, catalog=catalog)
        for solver in (GTASolver(), FGTSolver(max_rounds=60)):
            other = solver.solve(sub, catalog=catalog, seed=seed)
            assert (
                mpta.assignment.total_payoff
                >= other.assignment.total_payoff - 1e-9
            )

    @given(sub=subproblems(), seed=st.integers(0, 5))
    @settings(max_examples=20, deadline=None)
    def test_iegt_total_payoff_monotone_in_trace(self, sub, seed):
        result = IEGTSolver(max_rounds=120).solve(sub, seed=seed)
        totals = result.trace.series("potential")
        assert all(b >= a - 1e-9 for a, b in zip(totals, totals[1:]))

    @given(sub=subproblems(), seed=st.integers(0, 5))
    @settings(max_examples=20, deadline=None)
    def test_payoffs_match_strategy_payoffs(self, sub, seed):
        # The assignment's reported payoffs must equal Equation 1 recomputed
        # from the routes.
        result = FGTSolver(max_rounds=60).solve(sub, seed=seed)
        for pair in result.assignment:
            if pair.route is None or len(pair.route) == 0:
                assert pair.payoff == 0.0
            else:
                expected = pair.route.total_reward / pair.route.completion_time
                assert pair.payoff == pytest.approx(expected)
