"""Hypothesis property tests for the k-means implementation."""

import hypothesis.strategies as st
import numpy as np
import pytest
from hypothesis import given, settings

from repro.datasets.clustering import kmeans

coordinates = st.floats(min_value=-50.0, max_value=50.0, allow_nan=False)


@st.composite
def point_sets(draw, min_points=3, max_points=40):
    n = draw(st.integers(min_points, max_points))
    return np.array(
        [[draw(coordinates), draw(coordinates)] for _ in range(n)]
    )


class TestKMeansProperties:
    @given(points=point_sets(), data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_labels_partition_points(self, points, data):
        k = data.draw(st.integers(1, min(5, len(points))))
        result = kmeans(points, k, seed=0)
        assert result.labels.shape == (len(points),)
        assert set(result.labels.tolist()) <= set(range(k))

    @given(points=point_sets(), data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_labels_are_nearest_centroids(self, points, data):
        k = data.draw(st.integers(1, min(5, len(points))))
        result = kmeans(points, k, seed=0)
        distances = ((points[:, None, :] - result.centroids[None, :, :]) ** 2).sum(
            axis=2
        )
        chosen = distances[np.arange(len(points)), result.labels]
        assert np.all(chosen <= distances.min(axis=1) + 1e-9)

    @given(points=point_sets())
    @settings(max_examples=20, deadline=None)
    def test_inertia_non_increasing_in_k(self, points):
        n = len(points)
        ks = sorted({1, min(2, n), min(4, n)})
        inertias = [kmeans(points, k, seed=3).inertia for k in ks]
        # More clusters can only reduce (or tie) the optimal inertia; the
        # heuristic occasionally misses, so allow a small relative slack.
        for a, b in zip(inertias, inertias[1:]):
            assert b <= a * 1.05 + 1e-9

    @given(points=point_sets())
    @settings(max_examples=20, deadline=None)
    def test_inertia_matches_definition(self, points):
        result = kmeans(points, min(3, len(points)), seed=1)
        direct = ((points - result.centroids[result.labels]) ** 2).sum()
        assert result.inertia == pytest.approx(float(direct), rel=1e-9)

    @given(points=point_sets())
    @settings(max_examples=15, deadline=None)
    def test_deterministic(self, points):
        a = kmeans(points, min(3, len(points)), seed=9)
        b = kmeans(points, min(3, len(points)), seed=9)
        assert np.array_equal(a.labels, b.labels)
