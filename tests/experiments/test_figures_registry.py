"""Tests for repro.experiments.figures and the experiment registry."""

import pytest

from repro.experiments.config import Scale
from repro.experiments.figures import ConvergenceStudy, fig4_tasks_gm, fig12_convergence
from repro.experiments.registry import EXPERIMENTS, get_experiment, list_experiments
from repro.experiments.sweep import SweepResult


class TestRegistry:
    def test_all_eleven_figures_present(self):
        ids = list_experiments()
        assert ids[:11] == [f"fig{i}" for i in range(2, 13)]
        assert set(ids[11:]) == {"ext-longrun", "ext-metric"}

    def test_lookup(self):
        entry = get_experiment("fig5")
        assert entry.dataset == "SYN"
        assert "|S|" in entry.parameter

    def test_unknown_id(self):
        with pytest.raises(KeyError, match="known:"):
            get_experiment("fig99")

    def test_describe(self):
        assert "Figure 4" in get_experiment("fig4").describe()


class TestFigureRuns:
    def test_fig4_smoke(self):
        result = fig4_tasks_gm(scale=Scale.SMOKE, seed=1)
        assert isinstance(result, SweepResult)
        assert result.parameter == "tasks"
        assert set(result.algorithms) >= {"GTA", "FGT", "IEGT"}

    def test_fig4_without_mpta(self):
        result = fig4_tasks_gm(scale=Scale.SMOKE, seed=1, include_mpta=False)
        assert "MPTA" not in result.algorithms

    def test_registry_run_dispatch(self):
        result = get_experiment("fig6").run(scale=Scale.SMOKE, seed=0)
        assert result.parameter == "workers"

    def test_fig12_returns_traces(self):
        study = fig12_convergence(scale=Scale.SMOKE, seed=0, dataset="gm")
        assert isinstance(study, ConvergenceStudy)
        assert set(study.traces) == {"FGT", "IEGT"}
        for name in ("FGT", "IEGT"):
            series = study.series(name)
            assert len(series) >= 1
            assert study.rounds[name] == len(series)

    def test_fig12_rejects_unknown_dataset(self):
        with pytest.raises(ValueError, match="dataset"):
            fig12_convergence(scale=Scale.SMOKE, dataset="mars")

    def test_fig12_syn(self):
        study = fig12_convergence(scale=Scale.SMOKE, seed=0, dataset="syn")
        assert "SYN" in study.name


class TestExtensionExperiments:
    def test_ext_longrun_smoke(self):
        study = get_experiment("ext-longrun").run(scale=Scale.SMOKE, seed=0)
        assert set(study.reports) == {"GTA", "MAXMIN", "IEGT"}
        text = study.format()
        assert "cum_P_dif" in text
        for report in study.reports.values():
            assert report.arrived_tasks >= 0

    def test_ext_metric_smoke(self):
        study = get_experiment("ext-metric").run(scale=Scale.SMOKE, seed=0)
        assert set(study.payoff_difference) == {"euclidean", "manhattan"}
        assert study.solvers == ["GTA", "FGT", "IEGT"]
        assert "manhattan" in study.format()
