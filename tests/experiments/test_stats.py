"""Tests for repro.experiments.stats (repeated-seed aggregation)."""

import math

import pytest

from repro.experiments.runner import RunRecord
from repro.experiments.stats import (
    CellStats,
    aggregate,
    run_repeated_sweep,
)
from repro.experiments.sweep import SweepResult


def _sweep_factory(values_by_seed):
    def factory(seed):
        result = SweepResult(name="demo", parameter="k", values=[1, 2])
        pdif_a, pdif_b = values_by_seed[seed]
        result.add(1, [RunRecord("A", pdif_a, 1.0, 0.1)])
        result.add(2, [RunRecord("A", pdif_b, 2.0, 0.2)])
        return result

    return factory


class TestAggregate:
    def test_single_sample(self):
        stats = aggregate([3.0])
        assert stats.mean == 3.0
        assert stats.std == 0.0
        assert math.isnan(stats.ci95_half_width)
        assert stats.n == 1

    def test_known_values(self):
        stats = aggregate([1.0, 3.0])
        assert stats.mean == 2.0
        assert stats.std == pytest.approx(math.sqrt(2.0))
        # t(0.975, df=1) = 12.706; half = 12.706 * sqrt(2)/sqrt(2).
        assert stats.ci95_half_width == pytest.approx(12.706)

    def test_ci_bounds(self):
        stats = aggregate([2.0, 4.0, 6.0])
        assert stats.ci_low < stats.mean < stats.ci_high

    def test_identical_samples_zero_spread(self):
        stats = aggregate([5.0] * 8)
        assert stats.std == 0.0
        assert stats.ci95_half_width == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            aggregate([])

    def test_format(self):
        assert "±" in aggregate([1.0, 2.0]).format()
        assert "±" not in aggregate([1.0]).format()


class TestRunRepeatedSweep:
    def test_aggregates_across_seeds(self):
        factory = _sweep_factory({0: (1.0, 10.0), 1: (3.0, 20.0)})
        result = run_repeated_sweep(factory, seeds=[0, 1])
        cells = result.series("payoff_difference", "A")
        assert cells[0].mean == pytest.approx(2.0)
        assert cells[1].mean == pytest.approx(15.0)
        assert result.series_mean("average_payoff", "A") == [1.0, 2.0]
        assert result.seeds == [0, 1]

    def test_empty_seeds_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            run_repeated_sweep(lambda s: None, seeds=[])

    def test_mismatched_grids_rejected(self):
        def factory(seed):
            result = SweepResult(name="demo", parameter="k", values=[1, 2 + seed])
            for v in result.values:
                result.add(v, [RunRecord("A", 1.0, 1.0, 0.1)])
            return result

        with pytest.raises(ValueError, match="disagree"):
            run_repeated_sweep(factory, seeds=[0, 1])

    def test_format_table(self):
        factory = _sweep_factory({0: (1.0, 10.0), 1: (3.0, 20.0)})
        result = run_repeated_sweep(factory, seeds=[0, 1])
        text = result.format_table("payoff_difference")
        assert "n=2 seeds" in text
        assert "±" in text
        assert "A" in text

    def test_algorithms_property(self):
        factory = _sweep_factory({0: (1.0, 10.0)})
        result = run_repeated_sweep(factory, seeds=[0])
        assert result.algorithms == ["A"]

    def test_end_to_end_with_real_sweep(self):
        from repro.experiments.figures import fig4_tasks_gm
        from repro.experiments.config import Scale

        result = run_repeated_sweep(
            lambda seed: fig4_tasks_gm(
                scale=Scale.SMOKE, seed=seed, include_mpta=False
            ),
            seeds=[0, 1],
        )
        for algorithm in result.algorithms:
            cells = result.series("payoff_difference", algorithm)
            assert all(c.n == 2 for c in cells)
