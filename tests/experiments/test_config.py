"""Tests for repro.experiments.config (Table I grids)."""

import pytest

from repro.experiments.config import (
    GM_GRID,
    SYN_GRID,
    SYN_SPACE_KM,
    ExperimentGrid,
    Scale,
)


class TestGrids:
    @pytest.mark.parametrize("scale", list(Scale))
    def test_all_scales_defined(self, scale):
        assert scale in GM_GRID
        assert scale in SYN_GRID
        assert scale in SYN_SPACE_KM

    def test_gm_ci_matches_table1(self):
        grid = GM_GRID[Scale.CI]
        assert grid.epsilon_grid == (0.2, 0.4, 0.6, 0.8, 1.0)
        assert grid.epsilon_default == 0.6
        assert grid.tasks_grid == (100, 200, 300, 400, 500)
        assert grid.tasks_default == 200
        assert grid.workers_default == 40
        assert grid.dps_default == 100

    def test_syn_paper_matches_table1(self):
        grid = SYN_GRID[Scale.PAPER]
        assert grid.epsilon_default == 2.0
        assert grid.tasks_default == 100_000
        assert grid.workers_default == 2_000
        assert grid.dps_default == 5_000
        assert grid.expiry_grid == (0.5, 1.0, 1.5, 2.0, 2.5)
        assert grid.maxdp_grid == (1, 2, 3, 4)
        assert grid.n_centers == 50

    def test_syn_ci_preserves_per_center_density(self):
        ci = SYN_GRID[Scale.CI]
        paper = SYN_GRID[Scale.PAPER]
        assert ci.tasks_default / ci.n_centers == pytest.approx(
            paper.tasks_default / paper.n_centers
        )
        assert ci.workers_default / ci.n_centers == pytest.approx(
            paper.workers_default / paper.n_centers
        )
        assert ci.dps_default / ci.n_centers == pytest.approx(
            paper.dps_default / paper.n_centers
        )

    def test_defaults_must_be_grid_members(self):
        with pytest.raises(ValueError, match="epsilon_default"):
            ExperimentGrid(
                epsilon_grid=(1.0, 2.0),
                epsilon_default=3.0,
                tasks_grid=(10,),
                tasks_default=10,
                workers_grid=(5,),
                workers_default=5,
                dps_grid=(4,),
                dps_default=4,
            )

    def test_expiry_default_checked_when_grid_present(self):
        with pytest.raises(ValueError, match="expiry_default"):
            ExperimentGrid(
                epsilon_grid=(1.0,),
                epsilon_default=1.0,
                tasks_grid=(10,),
                tasks_default=10,
                workers_grid=(5,),
                workers_default=5,
                dps_grid=(4,),
                dps_default=4,
                expiry_grid=(1.0, 2.0),
                expiry_default=9.0,
            )
