"""Behavioral tests for run_sweep's catalog and -W arm caching.

The epsilon sweeps (Figures 2-3) reuse one instance across grid points;
run_sweep must then (a) keep the catalog cache alive and (b) compute the
epsilon-independent -W arms once and replicate them as flat lines.
"""

import pytest

from repro.datasets.gmission import GMissionConfig, generate_gmission_like
from repro.experiments.runner import default_algorithms, unpruned_variants
from repro.experiments.sweep import run_sweep


@pytest.fixture(scope="module")
def shared_instance():
    return generate_gmission_like(
        GMissionConfig(n_tasks=50, n_workers=6, n_delivery_points=12), seed=6
    )


class TestUnprunedCaching:
    def test_w_arms_constant_across_grid(self, shared_instance):
        algorithms = default_algorithms(include_mpta=False)
        result = run_sweep(
            name="eps",
            parameter="epsilon",
            values=[0.3, 0.6, 0.9],
            make_instance=lambda v: shared_instance,
            algorithms=algorithms,
            epsilon_for=lambda v: float(v),
            seed=0,
            unpruned=unpruned_variants(algorithms),
        )
        for algorithm in result.algorithms:
            if not algorithm.endswith("-W"):
                continue
            for metric in ("payoff_difference", "average_payoff", "cpu_seconds"):
                series = result.series(metric, algorithm)
                assert len(set(series)) == 1, (
                    f"{algorithm} {metric} should be one cached value, got {series}"
                )

    def test_pruned_arms_vary_with_epsilon(self, shared_instance):
        algorithms = default_algorithms(include_mpta=False)
        result = run_sweep(
            name="eps",
            parameter="epsilon",
            values=[0.2, 1.2],
            make_instance=lambda v: shared_instance,
            algorithms=algorithms,
            epsilon_for=lambda v: float(v),
            seed=0,
        )
        # A much larger epsilon admits more strategies: some metric moves.
        moved = any(
            len(set(result.series(metric, algorithm))) > 1
            for algorithm in result.algorithms
            for metric in ("payoff_difference", "average_payoff")
        )
        assert moved

    def test_fresh_instances_rebuild_unpruned(self):
        # When the instance changes per grid point, -W arms must re-run.
        algorithms = default_algorithms(include_mpta=False)[:1]  # GTA only
        result = run_sweep(
            name="tasks",
            parameter="tasks",
            values=[30, 70],
            make_instance=lambda v: generate_gmission_like(
                GMissionConfig(n_tasks=int(v), n_workers=5, n_delivery_points=10),
                seed=1,
            ),
            algorithms=algorithms,
            epsilon_for=lambda v: 0.6,
            seed=0,
            unpruned=unpruned_variants(algorithms),
        )
        series = result.series("average_payoff", "GTA-W")
        assert len(set(series)) == 2  # genuinely recomputed per instance
