"""Smoke coverage: every registry experiment runs end-to-end at SMOKE scale."""

import pytest

from repro.experiments.config import Scale
from repro.experiments.registry import get_experiment, list_experiments
from repro.experiments.sweep import METRICS, SweepResult

_SWEEP_IDS = [
    e for e in list_experiments() if e != "fig12" and not e.startswith("ext-")
]

_EXPECTED_PARAMETER = {
    "fig2": "epsilon_km",
    "fig3": "epsilon_km",
    "fig4": "tasks",
    "fig5": "tasks",
    "fig6": "workers",
    "fig7": "workers",
    "fig8": "delivery_points",
    "fig9": "delivery_points",
    "fig10": "expiry_hours",
    "fig11": "maxDP",
}


@pytest.fixture(scope="module")
def sweep_results():
    results = {}
    for experiment_id in _SWEEP_IDS:
        entry = get_experiment(experiment_id)
        results[experiment_id] = entry.run(
            scale=Scale.SMOKE, seed=0, include_mpta=False
        )
    return results


class TestAllSweepFigures:
    @pytest.mark.parametrize("experiment_id", _SWEEP_IDS)
    def test_returns_complete_sweep(self, sweep_results, experiment_id):
        result = sweep_results[experiment_id]
        assert isinstance(result, SweepResult)
        assert result.parameter == _EXPECTED_PARAMETER[experiment_id]
        assert len(result.values) >= 2
        assert {"GTA", "FGT", "IEGT"} <= set(result.algorithms)

    @pytest.mark.parametrize("experiment_id", _SWEEP_IDS)
    def test_all_metrics_populated(self, sweep_results, experiment_id):
        result = sweep_results[experiment_id]
        for metric in METRICS:
            for algorithm in result.algorithms:
                series = result.series(metric, algorithm)
                assert len(series) == len(result.values)
                assert all(v >= 0.0 for v in series)

    @pytest.mark.parametrize("experiment_id", ["fig2", "fig3"])
    def test_epsilon_sweeps_include_unpruned_arms(self, sweep_results, experiment_id):
        result = sweep_results[experiment_id]
        unpruned = {a for a in result.algorithms if a.endswith("-W")}
        assert {"GTA-W", "FGT-W", "IEGT-W"} <= unpruned

    @pytest.mark.parametrize("experiment_id", ["fig2", "fig3"])
    def test_unpruned_arms_flat_across_epsilon(self, sweep_results, experiment_id):
        # -W arms are epsilon-independent: their series must be constant.
        result = sweep_results[experiment_id]
        for algorithm in result.algorithms:
            if not algorithm.endswith("-W"):
                continue
            for metric in ("payoff_difference", "average_payoff"):
                series = result.series(metric, algorithm)
                assert max(series) - min(series) < 1e-12

    def test_as_dict_roundtrips_structure(self, sweep_results):
        d = sweep_results["fig5"].as_dict()
        assert set(d["metrics"]) == set(METRICS)
        assert d["values"] == sweep_results["fig5"].values
