"""Tests for repro.experiments.export."""

import pytest

from repro.experiments.export import (
    load_sweep_csv,
    load_sweep_json,
    sweep_to_csv,
    sweep_to_json,
)
from repro.experiments.runner import RunRecord
from repro.experiments.sweep import SweepResult


@pytest.fixture
def result():
    sweep = SweepResult(name="Demo", parameter="k", values=[1, 2])
    sweep.add(1, [RunRecord("GTA", 3.0, 5.0, 0.1), RunRecord("IEGT", 1.0, 4.0, 0.2)])
    sweep.add(2, [RunRecord("GTA", 4.0, 6.0, 0.1), RunRecord("IEGT", 1.5, 4.5, 0.3)])
    return sweep


class TestJson:
    def test_roundtrip(self, result, tmp_path):
        path = sweep_to_json(result, tmp_path / "out" / "demo.json")
        loaded = load_sweep_json(path)
        assert loaded == result.as_dict()
        assert loaded["metrics"]["payoff_difference"]["IEGT"] == [1.0, 1.5]

    def test_creates_parent_dirs(self, result, tmp_path):
        path = sweep_to_json(result, tmp_path / "a" / "b" / "c.json")
        assert path.exists()


class TestCsv:
    def test_tidy_layout(self, result, tmp_path):
        path = sweep_to_csv(result, tmp_path / "demo.csv")
        rows = load_sweep_csv(path)
        assert len(rows) == 4  # 2 values x 2 algorithms
        assert set(rows[0]) == {
            "k",
            "algorithm",
            "payoff_difference",
            "average_payoff",
            "cpu_seconds",
        }

    def test_values_correct(self, result, tmp_path):
        path = sweep_to_csv(result, tmp_path / "demo.csv")
        rows = load_sweep_csv(path)
        iegt_at_2 = next(
            r for r in rows if r["algorithm"] == "IEGT" and r["k"] == "2"
        )
        assert float(iegt_at_2["payoff_difference"]) == 1.5
        assert float(iegt_at_2["average_payoff"]) == 4.5

    def test_end_to_end_with_real_sweep(self, tmp_path):
        from repro.experiments.config import Scale
        from repro.experiments.figures import fig4_tasks_gm

        sweep = fig4_tasks_gm(scale=Scale.SMOKE, seed=0, include_mpta=False)
        rows = load_sweep_csv(sweep_to_csv(sweep, tmp_path / "fig4.csv"))
        assert len(rows) == len(sweep.values) * len(sweep.algorithms)
