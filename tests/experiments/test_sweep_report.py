"""Tests for repro.experiments.sweep and repro.experiments.report."""

import pytest

from repro.datasets.gmission import GMissionConfig, generate_gmission_like
from repro.experiments.report import format_ratio_line, format_series_table, format_sweep
from repro.experiments.runner import default_algorithms
from repro.experiments.sweep import METRICS, SweepResult, run_sweep
from repro.experiments.runner import RunRecord


def _record(name, pdif, avg, cpu):
    return RunRecord(name, pdif, avg, cpu)


@pytest.fixture
def sweep_result():
    result = SweepResult(name="Demo", parameter="k", values=[1, 2])
    result.add(1, [_record("GTA", 4.0, 8.0, 0.1), _record("IEGT", 1.0, 7.0, 0.2)])
    result.add(2, [_record("GTA", 5.0, 9.0, 0.1), _record("IEGT", 1.5, 7.5, 0.3)])
    return result


class TestSweepResult:
    def test_algorithms_in_order(self, sweep_result):
        assert sweep_result.algorithms == ["GTA", "IEGT"]

    def test_series(self, sweep_result):
        assert sweep_result.series("payoff_difference", "IEGT") == [1.0, 1.5]
        assert sweep_result.series("cpu_seconds", "GTA") == [0.1, 0.1]

    def test_unknown_metric_rejected(self, sweep_result):
        with pytest.raises(ValueError, match="unknown metric"):
            sweep_result.series("latency", "GTA")

    def test_record_lookup(self, sweep_result):
        assert sweep_result.record(2, "GTA").average_payoff == 9.0

    def test_as_dict(self, sweep_result):
        d = sweep_result.as_dict()
        assert d["parameter"] == "k"
        assert set(d["metrics"]) == set(METRICS)
        assert d["metrics"]["average_payoff"]["IEGT"] == [7.0, 7.5]

    def test_as_dict_diagnostics(self, sweep_result):
        diags = sweep_result.as_dict()["diagnostics"]
        assert set(diags) == {"GTA", "IEGT"}
        assert len(diags["GTA"]) == 2  # one entry per grid value
        entry = diags["GTA"][0]
        assert set(entry) == {"rounds", "converged", "metrics"}

    def test_as_dict_diagnostics_carry_run_metrics(self):
        result = SweepResult(name="Demo", parameter="k", values=[1])
        record = RunRecord(
            "FGT", 1.0, 2.0, 0.1, rounds=4, metrics={"fgt.switches": 9}
        )
        result.add(1, [record])
        entry = result.as_dict()["diagnostics"]["FGT"][0]
        assert entry["rounds"] == 4
        assert entry["metrics"]["fgt.switches"] == 9


class TestRunSweep:
    def test_end_to_end_small(self):
        instance = generate_gmission_like(
            GMissionConfig(n_tasks=40, n_workers=5, n_delivery_points=10), seed=2
        )
        result = run_sweep(
            name="mini",
            parameter="epsilon",
            values=[0.4, 0.8],
            make_instance=lambda v: instance,
            algorithms=default_algorithms(include_mpta=False),
            epsilon_for=lambda v: float(v),
            seed=0,
        )
        assert result.values == [0.4, 0.8]
        assert set(result.algorithms) == {"GTA", "FGT", "IEGT"}
        for algorithm in result.algorithms:
            assert len(result.series("payoff_difference", algorithm)) == 2


class TestReport:
    def test_format_series_table(self):
        text = format_series_table(
            "Title", [1, 2], {"A": [0.5, 1.0], "B": [1500.0, 0.0]}, column_header="p"
        )
        assert "Title" in text
        assert "0.5000" in text
        assert "1500" in text
        assert text.count("\n") >= 4

    def test_format_sweep_contains_all_metrics(self, sweep_result):
        text = format_sweep(sweep_result)
        assert "Payoff Difference" in text
        assert "Average Payoff" in text
        assert "CPU Time" in text
        assert "GTA" in text and "IEGT" in text

    def test_format_sweep_metric_subset(self, sweep_result):
        text = format_sweep(sweep_result, metrics=["average_payoff"])
        assert "Payoff Difference" not in text

    def test_ratio_line(self, sweep_result):
        line = format_ratio_line(sweep_result, "payoff_difference", "IEGT", "GTA")
        assert "IEGT" in line and "GTA" in line and "%" in line

    def test_ratio_line_zero_baseline(self):
        result = SweepResult(name="z", parameter="k", values=[1])
        result.add(1, [_record("A", 1.0, 1.0, 0.0), _record("B", 0.0, 0.0, 0.0)])
        assert "undefined" in format_ratio_line(result, "cpu_seconds", "A", "B")
