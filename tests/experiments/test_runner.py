"""Tests for repro.experiments.runner."""

import pytest

from repro.datasets.gmission import GMissionConfig, generate_gmission_like
from repro.experiments.runner import (
    AlgorithmSpec,
    CatalogCache,
    default_algorithms,
    run_algorithms,
    unpruned_variants,
)


@pytest.fixture(scope="module")
def instance():
    return generate_gmission_like(
        GMissionConfig(n_tasks=50, n_workers=6, n_delivery_points=12), seed=3
    )


class TestSpecs:
    def test_default_algorithms_names(self):
        names = [s.name for s in default_algorithms()]
        assert names == ["MPTA", "GTA", "FGT", "IEGT"]

    def test_mpta_optional(self):
        names = [s.name for s in default_algorithms(include_mpta=False)]
        assert "MPTA" not in names

    def test_unpruned_variants_named(self):
        names = [s.name for s in unpruned_variants(default_algorithms())]
        assert names == ["MPTA-W", "GTA-W", "FGT-W", "IEGT-W"]

    def test_build_passes_epsilon(self):
        spec = default_algorithms()[1]  # GTA
        assert spec.build(0.7).epsilon == 0.7
        assert spec.build(None).epsilon is None


class TestRunAlgorithms:
    def test_one_record_per_arm(self, instance):
        records = run_algorithms(
            instance, default_algorithms(include_mpta=False), epsilon=0.6, seed=0
        )
        assert [r.algorithm for r in records] == ["GTA", "FGT", "IEGT"]
        for record in records:
            assert record.cpu_seconds >= 0.0
            assert record.payoff_difference >= 0.0
            assert len(record.payoffs) == len(instance.workers)

    def test_unpruned_arms_appended(self, instance):
        specs = default_algorithms(include_mpta=False)[:1]  # GTA only
        records = run_algorithms(
            instance, specs, epsilon=0.6, seed=0, unpruned=unpruned_variants(specs)
        )
        assert [r.algorithm for r in records] == ["GTA", "GTA-W"]

    def test_deterministic_in_seed(self, instance):
        specs = default_algorithms(include_mpta=False)
        a = run_algorithms(instance, specs, epsilon=0.6, seed=11)
        b = run_algorithms(instance, specs, epsilon=0.6, seed=11)
        for ra, rb in zip(a, b):
            assert ra.payoffs == rb.payoffs

    def test_seed_independent_of_arm_order(self, instance):
        specs = default_algorithms(include_mpta=False)
        forward = run_algorithms(instance, specs, epsilon=0.6, seed=7)
        reverse = run_algorithms(instance, list(reversed(specs)), epsilon=0.6, seed=7)
        by_name_f = {r.algorithm: r.payoffs for r in forward}
        by_name_r = {r.algorithm: r.payoffs for r in reverse}
        assert by_name_f == by_name_r

    def test_catalog_cache_reused(self, instance):
        cache = CatalogCache()
        sub = instance.subproblems()[0]
        catalog_a, time_a = cache.get(sub, 0.6)
        catalog_b, time_b = cache.get(sub, 0.6)
        assert catalog_a is catalog_b
        assert time_a == time_b
        catalog_c, _ = cache.get(sub, None)
        assert catalog_c is not catalog_a

    def test_as_dict_metrics(self, instance):
        record = run_algorithms(
            instance, default_algorithms(include_mpta=False)[:1], epsilon=0.6, seed=0
        )[0]
        d = record.as_dict()
        assert set(d) == {"payoff_difference", "average_payoff", "cpu_seconds"}


class TestVerifiedRuns:
    def test_verify_flag_runs_checkers_and_matches_plain_run(self, instance):
        from repro.verify.stats import reset_verification_stats, verification_stats

        specs = default_algorithms(include_mpta=False)
        plain = run_algorithms(instance, specs, epsilon=0.6, seed=5)
        reset_verification_stats()
        checked = run_algorithms(instance, specs, epsilon=0.6, seed=5, verify=True)
        stats = verification_stats()
        # Assignment checkers ran for every (arm, center) solve...
        assert stats.counts["assignment.verified"] >= len(specs)
        # ... the game solvers also ran their trace-level certificates ...
        assert stats.counts["fgt.pure-nash"] >= 1
        assert stats.counts["iegt.iess"] >= 1
        # ... and observing changed nothing.
        for before, after in zip(plain, checked):
            assert before.algorithm == after.algorithm
            assert before.payoffs == after.payoffs

    def test_verify_tolerates_solvers_without_flag(self, instance):
        from repro.baselines.random_assign import RandomSolver

        class Bare:
            """Solver without a ``verify`` dataclass field."""

            name = "BARE"

            def solve(self, sub, catalog=None, seed=None):
                return RandomSolver().solve(sub, catalog=catalog, seed=seed)

        specs = [AlgorithmSpec("BARE", lambda eps: Bare())]
        records = run_algorithms(instance, specs, epsilon=0.6, seed=2, verify=True)
        assert records[0].algorithm == "BARE"
