"""Equity-mode solver tests: engine bit-identity, teeth, and verification.

The ledger-weighted equity mode (``docs/temporal_fairness.md``) promises

* scalar and vectorized engines stay elementwise bit-identical with a
  cumulative base attached (the same contract the plain game carries),
* the mode has *teeth*: a worker far ahead on cumulative payoff yields
  work to cumulative-poor peers, changing the equilibrium, and
* the invariant verifiers certify equity solves (effective-payoff Nash
  check for FGT, effective-average replicator sign for IEGT) without the
  now-inapplicable Lemma 2 monotone-potential check firing.
"""

import numpy as np
import pytest

from repro.core.fairness import (
    InequityAversion,
    equity_model,
    ledger_weighted_utilities,
)
from repro.datasets.gmission import GMissionConfig, generate_gmission_like
from repro.games.fgt import FGTSolver
from repro.games.iegt import IEGTSolver
from repro.games.potential import is_pure_nash
from repro.vdps.catalog import build_catalog

SEEDS = [0, 1, 2, 7, 13, 42]


def _subs_and_catalogs(seed):
    instance = generate_gmission_like(
        GMissionConfig(n_tasks=70, n_workers=9, n_delivery_points=16),
        seed=seed,
    )
    subs = list(instance.subproblems())
    catalogs = {
        sub.center.center_id: build_catalog(sub, epsilon=0.8) for sub in subs
    }
    return subs, catalogs


def _baselines(sub, spread=25.0):
    """Deterministic skewed cumulative baselines over the sub's workers."""
    return {
        w.worker_id: spread * (i % 4)
        for i, w in enumerate(sub.online_workers)
    }


def _outcome(result):
    return {
        "routes": [
            (pair.worker.worker_id, pair.delivery_point_ids, pair.payoff)
            for pair in result.assignment.pairs
        ],
        "rounds": result.rounds,
        "converged": result.converged,
        "trace": [
            (
                point.round_index,
                point.payoff_difference,
                point.average_payoff,
                point.switches,
                point.potential,
            )
            for point in result.trace
        ],
    }


def _assert_engines_identical(make_solver, seed):
    subs, catalogs = _subs_and_catalogs(seed)
    assert subs
    for sub in subs:
        catalog = catalogs[sub.center.center_id]
        results = {
            engine: make_solver(engine, sub).solve(
                sub, catalog=catalog, seed=seed
            )
            for engine in ("scalar", "vectorized")
        }
        assert _outcome(results["scalar"]) == _outcome(results["vectorized"])


class TestEquityEngineDifferential:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_fgt_equity(self, seed):
        _assert_engines_identical(
            lambda engine, sub: FGTSolver(
                epsilon=0.8,
                engine=engine,
                equity_mode=True,
                equity_baselines=_baselines(sub),
            ),
            seed,
        )

    @pytest.mark.parametrize("seed", SEEDS)
    def test_iegt_equity(self, seed):
        _assert_engines_identical(
            lambda engine, sub: IEGTSolver(
                epsilon=0.8,
                engine=engine,
                equity_mode=True,
                equity_baselines=_baselines(sub),
            ),
            seed,
        )

    @pytest.mark.parametrize("seed", SEEDS[:3])
    def test_fgt_equity_verified(self, seed):
        _assert_engines_identical(
            lambda engine, sub: FGTSolver(
                epsilon=0.8,
                engine=engine,
                equity_mode=True,
                equity_baselines=_baselines(sub),
                verify=True,
            ),
            seed,
        )

    @pytest.mark.parametrize("seed", SEEDS[:3])
    def test_iegt_equity_verified(self, seed):
        _assert_engines_identical(
            lambda engine, sub: IEGTSolver(
                epsilon=0.8,
                engine=engine,
                equity_mode=True,
                equity_baselines=_baselines(sub),
                verify=True,
            ),
            seed,
        )

    @pytest.mark.parametrize("seed", SEEDS[:3])
    def test_fgt_equity_update_trace(self, seed):
        _assert_engines_identical(
            lambda engine, sub: FGTSolver(
                epsilon=0.8,
                engine=engine,
                equity_mode=True,
                equity_baselines=_baselines(sub),
                trace_granularity="update",
            ),
            seed,
        )


class TestEquityTeeth:
    """A skewed cumulative base must actually change who gets the work."""

    def _payoff_by_worker(self, result):
        return {
            pair.worker.worker_id: pair.payoff
            for pair in result.assignment.pairs
        }

    def test_fgt_equity_redistributes(self):
        changed = 0
        favoured = 0
        comparisons = 0
        for seed in SEEDS:
            subs, catalogs = _subs_and_catalogs(seed)
            for sub in subs:
                if len(sub.online_workers) < 3:
                    continue
                catalog = catalogs[sub.center.center_id]
                baselines = _baselines(sub, spread=40.0)
                plain = FGTSolver(epsilon=0.8).solve(
                    sub, catalog=catalog, seed=seed
                )
                equity = FGTSolver(
                    epsilon=0.8,
                    equity_mode=True,
                    equity_baselines=baselines,
                ).solve(sub, catalog=catalog, seed=seed)
                comparisons += 1
                p_plain = self._payoff_by_worker(plain)
                p_equity = self._payoff_by_worker(equity)
                if p_plain != p_equity:
                    changed += 1
                    # Cumulative-poor workers (base 0) should not, in
                    # aggregate, lose payoff relative to the plain game.
                    poor = [w for w, b in baselines.items() if b == 0.0]
                    gain = sum(
                        p_equity.get(w, 0.0) - p_plain.get(w, 0.0)
                        for w in poor
                    )
                    if gain >= 0:
                        favoured += 1
        assert comparisons, "no sub-problems with >= 3 workers"
        assert changed > 0, "equity mode never changed an assignment"
        assert favoured >= changed * 0.5, (
            f"cumulative-poor workers gained in only {favoured}/{changed} "
            f"changed assignments"
        )

    def test_zero_baselines_match_amplified_one_shot(self):
        """equity_mode with no baselines is the amplified IAU game."""
        subs, catalogs = _subs_and_catalogs(0)
        sub = subs[0]
        catalog = catalogs[sub.center.center_id]
        implicit = FGTSolver(epsilon=0.8, equity_mode=True).solve(
            sub, catalog=catalog, seed=3
        )
        explicit = FGTSolver(
            epsilon=0.8,
            equity_mode=True,
            equity_baselines={w.worker_id: 0.0 for w in sub.online_workers},
        ).solve(sub, catalog=catalog, seed=3)
        assert _outcome(implicit) == _outcome(explicit)


class TestEquityModelHelpers:
    def test_equity_model_amplifies(self):
        model = equity_model(InequityAversion(0.5, 0.5), 3.0)
        assert model.alpha == 1.5 and model.beta == 1.5

    def test_equity_model_rejects_non_positive(self):
        with pytest.raises(ValueError):
            FGTSolver(equity_strength=0.0)

    def test_ledger_weighted_utilities_reference(self):
        payoffs = [4.0, 1.0, 0.0]
        cumulative = [30.0, 0.0, 10.0]
        got = ledger_weighted_utilities(payoffs, cumulative)
        model = equity_model(InequityAversion(), 3.0)
        expected = model.utilities(np.asarray(payoffs) + np.asarray(cumulative))
        assert np.array_equal(got, expected)

    def test_rich_worker_marginal_utility_negative(self):
        """Past the guilt threshold, more payoff *lowers* a rich worker's
        equity utility — the mechanism that makes the mode active."""
        cumulative = [50.0, 0.0, 0.0]
        low = ledger_weighted_utilities([1.0, 0.0, 0.0], cumulative)[0]
        high = ledger_weighted_utilities([5.0, 0.0, 0.0], cumulative)[0]
        assert high < low


class TestEquityNashCheck:
    def test_is_pure_nash_respects_offsets(self):
        subs, catalogs = _subs_and_catalogs(1)
        sub = subs[0]
        catalog = catalogs[sub.center.center_id]
        baselines = _baselines(sub, spread=40.0)
        solver = FGTSolver(
            epsilon=0.8, equity_mode=True, equity_baselines=baselines
        )
        result = solver.solve(sub, catalog=catalog, seed=1)
        if not result.converged:
            pytest.skip("equity solve hit the round budget on this instance")
        # Rebuild the final state to query the Nash predicate directly.
        from repro.games.base import GameState

        state = GameState(catalog)
        for pair in result.assignment.pairs:
            wanted = frozenset(pair.delivery_point_ids)
            if not wanted:
                continue  # null strategy: GameState's initial state already
            for strategy in catalog.strategies(pair.worker.worker_id):
                if frozenset(strategy.point_ids) == wanted:
                    state.set_strategy(pair.worker.worker_id, strategy)
                    break
        offsets = np.array(
            [
                float(baselines.get(w.worker_id, 0.0))
                for w in state.workers
            ]
        )
        model = equity_model(InequityAversion(), solver.equity_strength)
        assert is_pure_nash(
            state,
            model,
            tol=2e-9,
            scales=np.ones(len(state.workers)),
            offsets=offsets,
        )
