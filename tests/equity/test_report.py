"""Scenario schedules, the two-arm equity report, and its CLI surface.

The report's claim — ledger-weighted IAU closes the long-run fairness gap
within the efficiency budget — is only meaningful if both arms replay the
exact same world.  These tests pin the schedule's determinism first, then
the comparison's teeth, then the ``python -m repro equity report`` wiring.
"""

import json

import pytest

from repro.cli import main
from repro.equity import (
    EFFICIENCY_BUDGET_PCT,
    compare_scenario,
    run_scenario,
)
from repro.sim.scenarios import (
    SCENARIOS,
    EquityScenario,
    get_scenario,
    unlucky_worker,
)


class TestScenarioSchedule:
    def test_registry_builders_round_trip(self):
        for name in SCENARIOS:
            scenario = get_scenario(name, rounds=7)
            assert scenario.name == name
            assert scenario.rounds == 7

    def test_unknown_scenario_raises(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            get_scenario("nope")

    def test_validation_rejects_bad_shapes(self):
        with pytest.raises(ValueError, match="rounds"):
            EquityScenario(name="bad", description="", rounds=0)
        with pytest.raises(ValueError, match="far_workers"):
            EquityScenario(
                name="bad", description="", n_workers=2, far_workers=3
            )
        with pytest.raises(ValueError, match="task_expiry_hours"):
            EquityScenario(name="bad", description="", task_expiry_hours=0.0)

    def test_schedule_is_pure_arithmetic(self):
        """Two instances of the same scenario emit identical schedules."""
        a = get_scenario("churn", rounds=12)
        b = get_scenario("churn", rounds=12)
        for index in range(12):
            assert a.round_tasks(index, 3.5) == b.round_tasks(index, 3.5)
            assert [w.worker_id for w in a.round_workers(index)] == [
                w.worker_id for w in b.round_workers(index)
            ]

    def test_worlds_build_identically(self):
        scenario = unlucky_worker(rounds=4)
        assert (
            scenario.build_world().fingerprint()
            == scenario.build_world().fingerprint()
        )

    def test_bursty_schedule_bursts(self):
        scenario = get_scenario("bursty", rounds=10)
        counts = [scenario.tasks_in_round(i) for i in range(10)]
        assert counts[4] == scenario.burst_size
        assert counts[0] == scenario.tasks_per_round

    def test_churn_joins_workers_on_schedule(self):
        scenario = get_scenario("churn", rounds=20)
        joined = [
            w.worker_id
            for i in range(20)
            for w in scenario.round_workers(i)
        ]
        # One joiner per join_every rounds (4, 8, 12, 16), none at round 0.
        assert joined == ["churn-j4", "churn-j5", "churn-j6", "churn-j7"]
        assert scenario.round_workers(0) == []


class TestRunScenario:
    def test_run_is_deterministic(self):
        scenario = unlucky_worker(rounds=6)
        first = run_scenario(scenario, seed=5)
        second = run_scenario(scenario, seed=5)
        assert first.as_dict() == second.as_dict()

    def test_outcome_accounts_every_worker(self):
        scenario = unlucky_worker(rounds=6)
        outcome = run_scenario(scenario, seed=0)
        assert sorted(outcome.income) == [f"unlucky-w{i}" for i in range(6)]
        assert outcome.rounds == 6
        assert len(outcome.gini_trajectory) == 6
        assert outcome.total_payoff == pytest.approx(
            sum(outcome.income.values())
        )

    def test_observer_arm_reports_metrics_without_equity_mode(self):
        outcome = run_scenario(
            unlucky_worker(rounds=4), equity_mode=False, seed=0
        )
        assert outcome.equity_mode is False
        assert 0.0 <= outcome.rolling_gini <= 1.0
        assert 0.0 < outcome.rolling_jain <= 1.0

    def test_rejects_unknown_algorithm(self):
        with pytest.raises(ValueError, match="FGT and IEGT"):
            run_scenario(unlucky_worker(rounds=2), algorithm="GTA")


class TestCompareScenario:
    def test_ledger_mode_closes_the_gap_on_unlucky(self):
        """The headline claim at test scale: fairer within the budget."""
        comparison = compare_scenario(unlucky_worker(rounds=16), seed=0)
        assert comparison.improved
        assert comparison.ledger.rolling_gini < comparison.per_round.rolling_gini
        assert comparison.within_budget
        assert comparison.efficiency_cost_pct <= EFFICIENCY_BUDGET_PCT

    def test_as_dict_and_format_cover_both_arms(self):
        comparison = compare_scenario(unlucky_worker(rounds=4), seed=0)
        data = comparison.as_dict()
        assert data["per_round"]["equity_mode"] is False
        assert data["ledger"]["equity_mode"] is True
        assert data["efficiency_budget_pct"] == EFFICIENCY_BUDGET_PCT
        text = comparison.format()
        assert "per-round arm" in text and "ledger arm" in text


class TestReportCLI:
    def test_json_report_exits_zero_and_improves(self, capsys):
        rc = main(
            [
                "equity", "report",
                "--scenario", "unlucky",
                "--rounds", "12",
                "--json",
            ]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert [s["scenario"] for s in payload["scenarios"]] == ["unlucky"]
        assert payload["all_improved"] is True
        assert payload["all_within_budget"] is True

    def test_text_report_writes_output_file(self, tmp_path, capsys):
        out = tmp_path / "report.txt"
        rc = main(
            [
                "equity", "report",
                "--scenario", "unlucky",
                "--rounds", "6",
                "--output", str(out),
            ]
        )
        assert rc == 0
        assert "scenario unlucky" in capsys.readouterr().out
        # --output always persists the machine-readable JSON payload.
        saved = json.loads(out.read_text())
        assert [s["scenario"] for s in saved["scenarios"]] == ["unlucky"]
