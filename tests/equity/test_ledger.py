"""EquityLedger unit tests: accounting, rolling metrics, round-tripping."""

import json

import pytest

from repro.equity.ledger import EquityLedger


class TestAccounting:
    def test_single_round(self):
        ledger = EquityLedger(decay=0.5, window=4)
        ledger.record_round({"a": 10.0, "b": 2.0})
        assert ledger.rounds == 1
        assert ledger.cumulative_of("a") == 10.0
        assert ledger.cumulative_of("b") == 2.0
        assert ledger.participation_of("a") == 1
        # Round mean is 6.0: a is +4 ahead, b -4 behind.
        assert ledger.balance_of("a") == 4.0
        assert ledger.balance_of("b") == -4.0

    def test_decay_compounds(self):
        ledger = EquityLedger(decay=0.5, window=4)
        ledger.record_round({"a": 8.0})
        ledger.record_round({"a": 8.0})
        assert ledger.cumulative_of("a") == 0.5 * 8.0 + 8.0

    def test_absent_worker_decays(self):
        ledger = EquityLedger(decay=0.5, window=4)
        ledger.record_round({"a": 8.0, "b": 0.0})
        ledger.record_round({"b": 4.0})
        assert ledger.cumulative_of("a") == 4.0
        assert ledger.participation_of("a") == 1
        assert ledger.participation_of("b") == 2

    def test_unknown_worker_defaults(self):
        ledger = EquityLedger()
        assert ledger.cumulative_of("ghost") == 0.0
        assert ledger.balance_of("ghost") == 0.0
        assert ledger.participation_of("ghost") == 0

    def test_baselines_sorted(self):
        ledger = EquityLedger()
        ledger.record_round({"b": 1.0, "a": 2.0, "c": 0.0})
        assert list(ledger.baselines()) == ["a", "b", "c"]

    def test_bounded_by_geometric_sum(self):
        ledger = EquityLedger(decay=0.9, window=4)
        for _ in range(500):
            ledger.record_round({"a": 1.0})
        assert ledger.cumulative_of("a") < 1.0 / (1.0 - 0.9) + 1e-9

    def test_validation(self):
        with pytest.raises(ValueError):
            EquityLedger(decay=0.0)
        with pytest.raises(ValueError):
            EquityLedger(decay=1.5)
        with pytest.raises(ValueError):
            EquityLedger(window=0)


class TestRollingMetrics:
    def test_window_truncates(self):
        ledger = EquityLedger(decay=0.9, window=2)
        ledger.record_round({"a": 100.0, "b": 0.0})
        ledger.record_round({"a": 1.0, "b": 1.0})
        ledger.record_round({"a": 1.0, "b": 1.0})
        # The 100-payoff round has rolled out of the window.
        assert ledger.rolling_payoffs() == {"a": 2.0, "b": 2.0}
        assert ledger.rolling_gini() == 0.0
        assert ledger.rolling_jain() == 1.0

    def test_unequal_window_income(self):
        ledger = EquityLedger(window=8)
        for _ in range(4):
            ledger.record_round({"a": 10.0, "b": 0.0})
        assert ledger.rolling_gini() > 0.4
        assert ledger.rolling_jain() < 0.6

    def test_empty_ledger(self):
        ledger = EquityLedger()
        assert ledger.rolling_gini() == 0.0
        assert ledger.rolling_jain() == 1.0
        summary = ledger.summary()
        assert summary["rounds"] == 0
        assert summary["workers"] == 0


class TestPersistence:
    def _busy_ledger(self):
        ledger = EquityLedger(decay=0.8, window=3)
        ledger.record_round({"a": 3.0, "b": 1.0})
        ledger.record_round({"a": 0.5, "c": 2.5})
        ledger.record_round({"b": 4.0, "c": 0.0})
        ledger.record_round({"a": 1.0, "b": 1.0, "c": 1.0})
        return ledger

    def test_dict_round_trip_exact(self):
        ledger = self._busy_ledger()
        clone = EquityLedger.from_dict(ledger.as_dict())
        assert clone == ledger
        assert list(clone.fingerprint_items()) == list(
            ledger.fingerprint_items()
        )

    def test_json_round_trip_exact(self):
        """JSON is the journal's wire format; floats must survive it."""
        ledger = self._busy_ledger()
        clone = EquityLedger.from_dict(
            json.loads(json.dumps(ledger.as_dict()))
        )
        assert clone == ledger

    def test_replay_matches_restore(self):
        """Replaying the per-round records reproduces a checkpoint restore."""
        rounds = [
            {"a": 3.0, "b": 1.0},
            {"a": 0.5, "c": 2.5},
            {"b": 4.0, "c": 0.0},
        ]
        live = EquityLedger(decay=0.8, window=3)
        for r in rounds:
            live.record_round(r)
        replayed = EquityLedger(decay=0.8, window=3)
        for r in rounds:
            replayed.record_round(json.loads(json.dumps(r)))
        assert replayed == live

    def test_fingerprint_sensitive_to_state(self):
        ledger = self._busy_ledger()
        other = self._busy_ledger()
        other.record_round({"a": 0.0})
        assert list(ledger.fingerprint_items()) != list(
            other.fingerprint_items()
        )
