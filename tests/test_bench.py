"""Tests for the tracked performance baseline (repro.bench + CLI)."""

import json

import pytest

from repro.bench import (
    BENCH_SHAPES,
    KERNEL_LARGE_SHAPES,
    format_report,
    run_bench,
)
from repro.cli import main


class TestRunBench:
    def test_smoke_report_shape(self, tmp_path):
        out = tmp_path / "bench.json"
        report = run_bench(scale="smoke", seed=0, repeats=1, output=out)
        on_disk = json.loads(out.read_text())
        assert on_disk == json.loads(json.dumps(report))
        assert report["scale"] == "smoke"
        assert report["shape"] == BENCH_SHAPES["smoke"].as_dict()
        assert report["catalog"]["strategies"] > 0
        for phase in ("fgt", "iegt"):
            data = report[phase]
            # The bit-identity contract is asserted on every bench run.
            assert data["identical"] is True
            assert data["scalar_seconds"] > 0
            assert data["vectorized_seconds"] > 0
            assert data["speedup"] == pytest.approx(
                data["scalar_seconds"] / data["vectorized_seconds"]
            )
            assert data["rounds"] >= 1
            # The vectorized solves flush engine.* batch counters.
            assert data["metrics_vectorized"]["engine.filter_batches"] > 0
            assert "engine.filter_batches" not in data["metrics_scalar"]
        assert report["schema"] == 6
        shards = report["shards"]
        # The shard-pool gates are hard bench gates (CLI exits 1): shard
        # layout must not change results, and a chaos-killed shard must
        # recover bit-identical.
        assert shards["identical"] is True
        assert shards["recovered_identical"] is True
        assert shards["respawns"] >= 1
        assert shards["shards"] == 2
        assert shards["single_seconds"] > 0
        assert shards["sharded_seconds"] > 0
        kernel = report["kernel"]
        # Kernel-tier bit-identity is a hard bench gate (CLI exits 1).
        assert kernel["identical"] is True
        assert kernel["scalar_seconds"] > 0
        assert kernel["vectorized_seconds"] > 0
        assert kernel["speedup"] == pytest.approx(
            kernel["scalar_seconds"] / kernel["vectorized_seconds"]
        )
        assert kernel["strategies"] > 0
        large = kernel["large"]
        assert large["shape"] == KERNEL_LARGE_SHAPES["smoke"].as_dict()
        assert large["kernel"] == "vectorized"
        assert large["seconds"] > 0
        assert large["strategies"] > 0
        equity = report["temporal_fairness"]
        # The temporal-fairness claim is a hard bench gate: the ledger
        # arm must strictly improve rolling Gini within the budget.
        assert equity["improved"] is True
        assert equity["within_budget"] is True
        assert equity["ledger_rolling_gini"] < equity["per_round_rolling_gini"]
        assert equity["efficiency_cost_pct"] <= equity["budget_pct"]
        assert equity["scenario"] == "unlucky"
        assert equity["seconds"] > 0
        delta = report["catalog_delta"]
        # Delta-vs-rebuild equality is part of the bench acceptance gate.
        assert delta["identical"] is True
        assert len(delta["steps"]) == 4
        assert delta["delta_seconds"] > 0
        assert delta["rebuild_seconds"] > 0
        assert delta["speedup"] == pytest.approx(
            delta["rebuild_seconds"] / delta["delta_seconds"]
        )
        assert all(step["identical"] for step in delta["steps"])

    def test_format_report_mentions_catalog_delta(self):
        report = run_bench(scale="smoke", seed=0, repeats=1)
        text = format_report(report)
        assert "catalog delta" in text and "identical=True" in text
        assert "temporal fairness" in text and "improved=True" in text
        assert "kernel tiers" in text and "large arm" in text
        assert "shard pool" in text and "recovered_identical=True" in text

    def test_obs_overhead_section(self, tmp_path):
        report = run_bench(scale="smoke", seed=0, repeats=1)
        obs = report["obs_overhead"]
        # Tracing must never change the dispatch decisions.
        assert obs["identical"] is True
        for mode in ("disabled", "sampled_out", "traced"):
            assert obs[f"{mode}_seconds"] > 0
        assert obs["budget_pct"] == 2.0
        # No previous report at the output path: no baseline comparison.
        assert obs["baseline_disabled_seconds"] is None
        assert obs["within_budget"] is True

    def test_obs_overhead_compares_to_tracked_baseline(self, tmp_path):
        out = tmp_path / "bench.json"
        run_bench(scale="smoke", seed=0, repeats=1, output=out)
        report = run_bench(scale="smoke", seed=0, repeats=1, output=out)
        obs = report["obs_overhead"]
        assert obs["baseline_disabled_seconds"] is not None
        assert obs["regression_pct"] is not None
        assert isinstance(obs["within_budget"], bool)

    def test_format_report_mentions_obs_overhead(self):
        report = run_bench(scale="smoke", seed=0, repeats=1)
        text = format_report(report)
        assert "obs overhead" in text and "identical=True" in text

    def test_rejects_unknown_scale(self):
        with pytest.raises(ValueError, match="scale"):
            run_bench(scale="galactic")

    def test_rejects_zero_repeats(self):
        with pytest.raises(ValueError, match="repeats"):
            run_bench(scale="smoke", repeats=0)

    def test_format_report_mentions_phases(self, tmp_path):
        report = run_bench(scale="smoke", seed=0, repeats=1)
        text = format_report(report)
        assert "FGT" in text and "IEGT" in text and "speedup" in text


class TestBenchCli:
    def test_cli_writes_report(self, tmp_path, capsys):
        out = tmp_path / "BENCH_core.json"
        code = main(
            [
                "bench",
                "--scale",
                "smoke",
                "--seed",
                "0",
                "--repeats",
                "1",
                "--output",
                str(out),
            ]
        )
        assert code == 0
        assert json.loads(out.read_text())["scale"] == "smoke"
        stdout = capsys.readouterr().out
        assert "speedup" in stdout
        assert str(out) in stdout

    def test_cli_profile_and_kernel_flags(self, tmp_path, capsys):
        from repro.kernels import set_default_kernel

        out = tmp_path / "BENCH_core.json"
        try:
            code = main(
                [
                    "bench",
                    "--scale",
                    "smoke",
                    "--repeats",
                    "1",
                    "--kernel",
                    "vectorized",
                    "--profile",
                    "--output",
                    str(out),
                ]
            )
        finally:
            set_default_kernel(None)
        assert code == 0
        stdout = capsys.readouterr().out
        # One cProfile dump per bench section.
        assert "--- profile: catalog" in stdout
        assert "--- profile: kernel" in stdout
        assert "--- profile: temporal_fairness" in stdout
