"""Determinism regressions: same seed => bit-identical assignments.

Both the parallel dispatcher (pool vs serial must agree, since every
center receives a derived seed independent of execution order) and the
randomised solvers themselves (repeated runs with the same seed must
reproduce the exact same equilibrium).
"""

from __future__ import annotations

import pytest

from repro.datasets.synthetic import SynConfig, generate_synthetic
from repro.games.fgt import FGTSolver
from repro.games.iegt import IEGTSolver
from repro.parallel import solve_instance


@pytest.fixture(scope="module")
def instance():
    config = SynConfig(
        n_centers=2,
        n_workers=12,
        n_delivery_points=20,
        n_tasks=120,
        space_km=8.0,
    )
    return generate_synthetic(config, seed=17)


def _routes(solution):
    return {
        center_id: assignment.as_mapping()
        for center_id, assignment in solution.assignments.items()
    }


@pytest.mark.parametrize(
    "solver",
    [FGTSolver(), IEGTSolver()],
    ids=lambda s: s.name,
)
def test_pool_and_serial_agree_bit_for_bit(instance, solver):
    serial = solve_instance(instance, solver, epsilon=4.0, seed=5, n_jobs=1)
    pooled = solve_instance(instance, solver, epsilon=4.0, seed=5, n_jobs=2)
    assert _routes(serial) == _routes(pooled)
    assert serial.payoffs == pooled.payoffs
    assert serial.payoff_difference == pooled.payoff_difference


@pytest.mark.parametrize(
    "solver",
    [FGTSolver(), IEGTSolver()],
    ids=lambda s: s.name,
)
def test_repeated_runs_reproduce_the_same_equilibrium(instance, solver):
    first = solve_instance(instance, solver, epsilon=4.0, seed=9)
    second = solve_instance(instance, solver, epsilon=4.0, seed=9)
    assert _routes(first) == _routes(second)
    assert first.payoffs == second.payoffs


def test_verification_does_not_perturb_results(instance):
    """verify=True only observes: it must not consume random draws."""
    import dataclasses

    for solver in (FGTSolver(), IEGTSolver()):
        plain = solve_instance(instance, solver, epsilon=4.0, seed=13)
        checked = solve_instance(
            instance,
            dataclasses.replace(solver, verify=True),
            epsilon=4.0,
            seed=13,
        )
        assert _routes(plain) == _routes(checked)
        assert plain.payoffs == checked.payoffs
