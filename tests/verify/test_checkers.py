"""Fault injection: every checker must catch its deliberately broken input.

The acceptance test of the verification subsystem itself — each test
fabricates an output that violates exactly one paper invariant (skipping
``Assignment``'s own constructor validation with ``validate=False``) and
asserts the matching checker raises :class:`InvariantViolation`.
"""

from __future__ import annotations

import pytest

from repro.core.assignment import Assignment, WorkerAssignment
from repro.core.exceptions import InvariantViolation
from repro.core.fairness import InequityAversion
from repro.core.instance import SubProblem
from repro.core.routing import Route
from repro.games.base import GameState
from repro.vdps.catalog import build_catalog
from repro.verify import (
    check_capacity,
    check_catalog_membership,
    check_deadlines,
    check_disjointness,
    check_payoffs,
    verify_assignment,
)
from repro.verify.stats import reset_verification_stats, verification_stats
from repro.verify.verifier import (
    EvolutionaryGameVerifier,
    NullVerifier,
    PotentialGameVerifier,
    set_verification,
    verification_enabled,
)
from tests.conftest import make_center, make_dp, make_worker, unit_speed_travel


@pytest.fixture
def sub() -> SubProblem:
    """Two close delivery points, two co-located workers, unit speed."""
    center = make_center(
        [
            make_dp("a", 1.0, 0.0, n_tasks=2, expiry=10.0),
            make_dp("b", 2.0, 0.0, n_tasks=1, expiry=10.0),
        ]
    )
    workers = (
        make_worker("w1", 0.0, 0.0, max_dp=2),
        make_worker("w2", 0.0, 0.0, max_dp=2),
    )
    return SubProblem(center, workers, unit_speed_travel())


def _top_strategy(catalog, worker_id):
    return catalog.strategies(worker_id)[0]


def test_valid_assignment_passes_every_checker(sub):
    catalog = build_catalog(sub)
    state = GameState(catalog)
    state.set_strategy("w1", _top_strategy(catalog, "w1"))
    verify_assignment(state.to_assignment(), sub=sub, catalog=catalog)


def test_duplicated_delivery_point_trips_disjointness(sub):
    catalog = build_catalog(sub)
    route = _top_strategy(catalog, "w1").route
    pairs = [
        WorkerAssignment(sub.workers[0], route),
        WorkerAssignment(sub.workers[1], route),
    ]
    broken = Assignment(pairs, validate=False)
    with pytest.raises(InvariantViolation) as exc:
        check_disjointness(broken)
    assert exc.value.invariant == "assignment.disjointness"


def test_duplicated_worker_trips_disjointness(sub):
    pairs = [
        WorkerAssignment(sub.workers[0], None),
        WorkerAssignment(sub.workers[0], None),
    ]
    with pytest.raises(InvariantViolation):
        check_disjointness(Assignment(pairs, validate=False))


def test_capacity_overflow_is_caught(sub):
    catalog = build_catalog(sub)
    two_point = next(
        s for s in catalog.strategies("w1") if s.size == 2
    )
    narrow = make_worker("w1", 0.0, 0.0, max_dp=1)
    broken = Assignment(
        [WorkerAssignment(narrow, two_point.route)], validate=False
    )
    with pytest.raises(InvariantViolation) as exc:
        check_capacity(broken)
    assert exc.value.invariant == "assignment.capacity"


def test_tampered_arrival_times_are_caught(sub):
    catalog = build_catalog(sub)
    route = _top_strategy(catalog, "w1").route
    shifted = Route(
        route.sequence, tuple(t + 0.5 for t in route.arrival_times)
    )
    broken = Assignment(
        [WorkerAssignment(sub.workers[0], shifted)], validate=False
    )
    with pytest.raises(InvariantViolation) as exc:
        check_deadlines(broken, sub)
    assert exc.value.invariant == "assignment.arrival-times"


def test_missed_deadline_is_caught():
    # The recurrence-correct arrival at the far point (t = 5) misses its
    # expiry of 1 hour, so the deadline checker must object even though
    # the recorded times agree with Definition 5.
    center = make_center([make_dp("far", 5.0, 0.0, n_tasks=1, expiry=1.0)])
    worker = make_worker("w1", 0.0, 0.0)
    sub = SubProblem(center, (worker,), unit_speed_travel())
    route = Route(center.delivery_points, (5.0,))
    broken = Assignment([WorkerAssignment(worker, route)], validate=False)
    with pytest.raises(InvariantViolation) as exc:
        check_deadlines(broken, sub)
    assert exc.value.invariant == "assignment.deadlines"


def test_route_outside_catalog_is_caught(sub):
    # epsilon = 0.5 km prunes the 1 km hop between "a" and "b", so the
    # two-point set {a, b} exists only in the unpruned catalog.
    pruned = build_catalog(sub, epsilon=0.5)
    full = build_catalog(sub)
    serving_ab = next(
        s for s in full.strategies("w1") if s.point_ids == frozenset({"a", "b"})
    )
    assert not any(
        s.point_ids == serving_ab.point_ids for s in pruned.strategies("w1")
    )
    broken = Assignment(
        [WorkerAssignment(sub.workers[0], serving_ab.route)], validate=False
    )
    with pytest.raises(InvariantViolation) as exc:
        check_catalog_membership(broken, pruned)
    assert exc.value.invariant == "assignment.catalog-membership"


def test_nonpositive_completion_time_is_caught(sub):
    catalog = build_catalog(sub)
    route = _top_strategy(catalog, "w1").route
    degenerate = Route(route.sequence, tuple(0.0 for _ in route.arrival_times))
    broken = Assignment(
        [WorkerAssignment(sub.workers[0], degenerate)], validate=False
    )
    with pytest.raises(InvariantViolation) as exc:
        check_payoffs(broken)
    assert exc.value.invariant == "assignment.payoff"


def test_fabricated_payoff_difference_is_caught(sub):
    catalog = build_catalog(sub)
    state = GameState(catalog)
    state.set_strategy("w1", _top_strategy(catalog, "w1"))
    assignment = state.to_assignment()
    with pytest.raises(InvariantViolation) as exc:
        check_payoffs(assignment, reported_payoff_difference=-1.0)
    assert exc.value.invariant == "assignment.payoff-difference"


def test_buggy_solver_skipping_disjointness_filter_is_caught(sub):
    """ISSUE acceptance: a no-conflict-filter greedy trips the checkers."""

    class BuggyGreedy:
        name = "BUGGY"

        def solve(self, sub, catalog=None, seed=None):
            # Deliberate bug: every worker takes its top strategy without
            # checking what others already claimed.
            pairs = [
                WorkerAssignment(w, catalog.strategies(w.worker_id)[0].route)
                for w in sub.workers
            ]
            return Assignment(pairs, validate=False)

    catalog = build_catalog(sub)
    assignment = BuggyGreedy().solve(sub, catalog=catalog)
    with pytest.raises(InvariantViolation) as exc:
        verify_assignment(assignment, sub=sub, catalog=catalog, solver="BUGGY")
    assert exc.value.invariant == "assignment.disjointness"
    assert exc.value.solver == "BUGGY"


# --- trace-level verifiers --------------------------------------------------


def test_fgt_non_improving_switch_is_caught():
    verifier = PotentialGameVerifier(InequityAversion(0.5, 0.5))
    with pytest.raises(InvariantViolation) as exc:
        verifier.on_switch("w1", 1, before=1.0, after=1.0)
    assert exc.value.invariant == "fgt.switch-improving"
    assert exc.value.worker_id == "w1"


def test_fgt_potential_decrease_is_caught():
    # alpha = beta = 0.2 gives Phi(1, 0) = 0.6 > Phi(0, 0) = 0, so the
    # second round's from-scratch recomputation shows a decrease.
    verifier = PotentialGameVerifier(InequityAversion(0.2, 0.2))
    verifier.on_round(1, [1.0, 0.0], None, switches=1)
    with pytest.raises(InvariantViolation) as exc:
        verifier.on_round(2, [0.0, 0.0], None, switches=1)
    assert exc.value.invariant == "fgt.potential-monotone"


def test_fgt_misreported_potential_is_caught():
    verifier = PotentialGameVerifier(InequityAversion(0.2, 0.2))
    with pytest.raises(InvariantViolation) as exc:
        verifier.on_round(1, [1.0, 0.0], 123.0, switches=1)
    assert exc.value.invariant == "fgt.potential-recompute"


def test_fgt_false_convergence_claim_is_caught(sub):
    # All-null play with non-empty catalogs is not a Nash equilibrium:
    # any worker strictly gains by taking a strategy.
    catalog = build_catalog(sub)
    state = GameState(catalog)
    verifier = PotentialGameVerifier(InequityAversion(0.2, 0.2))
    with pytest.raises(InvariantViolation) as exc:
        verifier.on_final(state, state.to_assignment(), sub=sub, converged=True)
    assert exc.value.invariant == "fgt.pure-nash"


def test_iegt_replicator_sign_violation_is_caught():
    verifier = EvolutionaryGameVerifier()
    # Above-average worker must not evolve (Eq. 11 derivative >= 0).
    with pytest.raises(InvariantViolation) as exc:
        verifier.on_switch("w2", 3, before=(2.0, 1.0), after=3.0)
    assert exc.value.invariant == "iegt.replicator-sign"


def test_iegt_non_improving_switch_is_caught():
    verifier = EvolutionaryGameVerifier()
    with pytest.raises(InvariantViolation) as exc:
        verifier.on_switch("w2", 3, before=(0.5, 1.0), after=0.4)
    assert exc.value.invariant == "iegt.switch-improving"


def test_iegt_false_equilibrium_claim_is_caught(sub):
    # w1 holds the best strategy; w2 plays null yet still has available
    # strategies, so the improved-equilibrium condition (Def. 10) fails.
    catalog = build_catalog(sub)
    state = GameState(catalog)
    state.set_strategy("w1", next(
        s for s in catalog.strategies("w1") if s.point_ids == frozenset({"a"})
    ))
    assert state.available_strategies("w2")
    verifier = EvolutionaryGameVerifier()
    with pytest.raises(InvariantViolation) as exc:
        verifier.on_final(state, state.to_assignment(), sub=sub, converged=True)
    assert exc.value.invariant == "iegt.iess"
    assert exc.value.worker_id == "w2"


# --- enablement plumbing ----------------------------------------------------


def test_verification_enabled_precedence(monkeypatch):
    monkeypatch.delenv("REPRO_VERIFY", raising=False)
    assert not verification_enabled()
    assert verification_enabled(True)
    monkeypatch.setenv("REPRO_VERIFY", "1")
    assert verification_enabled()
    monkeypatch.setenv("REPRO_VERIFY", "0")
    assert not verification_enabled()
    set_verification(True)
    try:
        assert verification_enabled()
    finally:
        set_verification(None)


def test_null_verifier_hooks_are_noops(sub):
    verifier = NullVerifier()
    verifier.on_solve_start(None)
    verifier.on_switch("w1", 1, 0.0, -1.0)
    verifier.on_round(1, [0.0], -5.0, 0)
    verifier.on_final(None, None)


def test_stats_count_executed_checks(sub):
    reset_verification_stats()
    catalog = build_catalog(sub)
    state = GameState(catalog)
    verify_assignment(state.to_assignment(), sub=sub, catalog=catalog)
    stats = verification_stats()
    assert stats.counts["assignment.disjointness"] == 1
    assert stats.counts["assignment.verified"] == 1
    assert stats.total >= 5
    assert "assignment.deadlines" in stats.format()
    reset_verification_stats()
    assert verification_stats().total == 0
