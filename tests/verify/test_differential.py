"""Differential harness: solvers vs themselves and vs the exhaustive oracle.

On instances small enough to enumerate (<= 3 workers), every solver in the
library must (a) pass all invariant checkers, (b) respect the oracle's
certified bounds — the lexicographic optimum bounds each heuristic's
``P_dif`` from below and MPTA's total payoff from above — and (c) be
deterministic: the same solver with the same seed yields zero diffs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.exhaustive import ExhaustiveSolver
from repro.baselines.gta import GTASolver
from repro.baselines.mpta import MPTASolver
from repro.core.instance import SubProblem
from repro.games.fgt import FGTSolver
from repro.games.iegt import IEGTSolver
from repro.games.potential import is_pure_nash
from repro.core.fairness import InequityAversion
from repro.vdps.catalog import build_catalog
from repro.verify import (
    DifferentialReport,
    check_against_oracle,
    oracle_bounds,
    run_differential,
)
from tests.conftest import make_center, make_dp, make_worker, unit_speed_travel

SOLVERS = [
    FGTSolver(max_rounds=80),
    IEGTSolver(max_rounds=160),
    GTASolver(),
    MPTASolver(node_budget=50_000),
]


@pytest.fixture
def sub() -> SubProblem:
    """Three workers over four delivery points: tiny but contended."""
    center = make_center(
        [
            make_dp("a", 1.0, 0.0, n_tasks=2, expiry=10.0),
            make_dp("b", 2.0, 0.0, n_tasks=1, expiry=10.0),
            make_dp("c", 0.0, 1.5, n_tasks=3, expiry=10.0),
            make_dp("d", -1.0, 0.0, n_tasks=1, expiry=10.0),
        ]
    )
    workers = (
        make_worker("w1", 0.5, 0.0, max_dp=2),
        make_worker("w2", 0.0, 0.5, max_dp=2),
        make_worker("w3", -0.5, 0.0, max_dp=1),
    )
    return SubProblem(center, workers, unit_speed_travel())


@pytest.mark.parametrize("solver", SOLVERS, ids=lambda s: s.name)
def test_same_solver_same_seed_has_no_discrepancies(sub, solver):
    report = run_differential(sub, solver, solver, seed=3)
    assert isinstance(report, DifferentialReport)
    assert report.agreeing, report.format()
    assert report.format().endswith("no discrepancies")


def test_generator_seed_is_rejected(sub):
    with pytest.raises(ValueError):
        run_differential(
            sub, GTASolver(), GTASolver(), seed=np.random.default_rng(0)
        )


def test_cross_solver_diffs_are_structured(sub):
    report = run_differential(sub, GTASolver(), FGTSolver(), seed=1)
    # GTA and FGT optimise different objectives; whether or not they agree
    # here, every discrepancy must carry a metric label and format cleanly.
    for discrepancy in report.discrepancies:
        assert discrepancy.metric
        assert discrepancy.format()


def test_every_solver_respects_oracle_bounds(sub):
    catalog = build_catalog(sub)
    bounds = oracle_bounds(catalog)
    assert bounds.joint_strategies > 1
    for solver in SOLVERS:
        result = solver.solve(sub, catalog=catalog, seed=11)
        check_against_oracle(result.assignment, bounds, solver=solver.name)
        # The lexicographic optimum bounds every heuristic's P_dif below.
        assert (
            result.assignment.payoff_difference
            >= bounds.min_payoff_difference - 1e-9
        )
        # ... and the exhaustive total-payoff maximum bounds MPTA above.
        assert result.assignment.total_payoff <= bounds.max_total_payoff + 1e-9


def test_exhaustive_solver_attains_the_oracle_optimum(sub):
    catalog = build_catalog(sub)
    bounds = oracle_bounds(catalog)
    result = ExhaustiveSolver().solve(sub, catalog=catalog)
    assert result.assignment.payoff_difference == pytest.approx(
        bounds.min_payoff_difference, abs=1e-9
    )
    assert result.assignment.average_payoff == pytest.approx(
        bounds.average_at_optimum, abs=1e-9
    )


def test_oracle_bounds_refuses_huge_spaces(sub):
    catalog = build_catalog(sub)
    with pytest.raises(ValueError):
        oracle_bounds(catalog, state_limit=2)


def test_converged_fgt_final_state_is_pure_nash(sub):
    catalog = build_catalog(sub)
    solver = FGTSolver(max_rounds=80, verify=True)
    result = solver.solve(sub, catalog=catalog, seed=5)
    assert result.converged
    # Re-derive the certificate outside the verifier as well.
    from repro.games.base import GameState

    state = GameState(catalog)
    for pair in result.assignment:
        if pair.route is not None and len(pair.route):
            chosen = frozenset(pair.delivery_point_ids)
            strategy = next(
                s
                for s in catalog.strategies(pair.worker.worker_id)
                if s.point_ids == chosen
            )
            state.set_strategy(pair.worker.worker_id, strategy)
    assert is_pure_nash(state, InequityAversion(0.5, 0.5), tol=2e-9)


@pytest.mark.parametrize("solver", SOLVERS, ids=lambda s: s.name)
def test_solvers_pass_checkers_with_verify_flag(sub, solver):
    import dataclasses

    verifying = dataclasses.replace(solver, verify=True)
    result = verifying.solve(sub, seed=2)
    assert len(result.assignment) == len(sub.workers)
