"""Tests for the command-line interface (python -m repro)."""

import csv
import threading
import time

import pytest

from repro.cli import main


class TestListExperiments:
    def test_lists_all_figures(self, capsys):
        assert main(["list-experiments"]) == 0
        out = capsys.readouterr().out
        for fig in range(2, 13):
            assert f"fig{fig}:" in out


class TestGenerate:
    def test_gm_generation(self, tmp_path, capsys):
        code = main(
            [
                "generate",
                str(tmp_path / "gm"),
                "--dataset",
                "gm",
                "--tasks",
                "50",
                "--workers",
                "6",
                "--delivery-points",
                "12",
                "--seed",
                "1",
            ]
        )
        assert code == 0
        assert (tmp_path / "gm" / "tasks.csv").exists()
        assert "|S|=50" in capsys.readouterr().out

    def test_syn_generation(self, tmp_path, capsys):
        code = main(
            [
                "generate",
                str(tmp_path / "syn"),
                "--dataset",
                "syn",
                "--centers",
                "2",
                "--tasks",
                "200",
                "--workers",
                "10",
                "--delivery-points",
                "30",
            ]
        )
        assert code == 0
        assert "|DC|=2" in capsys.readouterr().out


class TestSolve:
    @pytest.fixture
    def instance_dir(self, tmp_path):
        main(
            [
                "generate",
                str(tmp_path / "inst"),
                "--dataset",
                "gm",
                "--tasks",
                "60",
                "--workers",
                "8",
                "--delivery-points",
                "15",
                "--seed",
                "2",
            ]
        )
        return tmp_path / "inst"

    @pytest.mark.parametrize("algorithm", ["gta", "fgt", "iegt", "random"])
    def test_each_algorithm_runs(self, instance_dir, capsys, algorithm):
        code = main(
            ["solve", str(instance_dir), "--algorithm", algorithm, "--epsilon", "0.6"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "payoff difference" in out
        assert "average payoff" in out

    def test_assignment_csv_written(self, instance_dir, tmp_path, capsys):
        target = tmp_path / "out" / "assignment.csv"
        code = main(
            [
                "solve",
                str(instance_dir),
                "--algorithm",
                "gta",
                "--epsilon",
                "0.6",
                "--output",
                str(target),
            ]
        )
        assert code == 0
        with target.open(newline="") as fh:
            rows = list(csv.DictReader(fh))
        assert len(rows) == 8
        assert set(rows[0]) == {"worker_id", "center_id", "route", "payoff"}

    def test_solve_deterministic(self, instance_dir, capsys):
        main(["solve", str(instance_dir), "--algorithm", "iegt", "--seed", "5"])
        first = capsys.readouterr().out
        main(["solve", str(instance_dir), "--algorithm", "iegt", "--seed", "5"])
        second = capsys.readouterr().out
        assert first == second

    def test_n_jobs_matches_serial(self, instance_dir, capsys):
        args = [
            "solve",
            str(instance_dir),
            "--algorithm",
            "fgt",
            "--epsilon",
            "0.6",
            "--seed",
            "3",
        ]
        assert main(args) == 0
        serial = capsys.readouterr().out
        assert main(args + ["--n-jobs", "2"]) == 0
        parallel = capsys.readouterr().out
        assert serial == parallel


class TestCompare:
    @pytest.fixture
    def instance_dir(self, tmp_path):
        main(
            [
                "generate",
                str(tmp_path / "inst"),
                "--dataset",
                "gm",
                "--tasks",
                "60",
                "--workers",
                "8",
                "--delivery-points",
                "15",
                "--seed",
                "2",
            ]
        )
        return tmp_path / "inst"

    def test_compare_output(self, instance_dir, capsys):
        code = main(
            [
                "compare",
                str(instance_dir),
                "--baseline",
                "gta",
                "--challenger",
                "iegt",
                "--epsilon",
                "0.6",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "GTA -> IEGT" in out
        assert "winners=" in out and "losers=" in out

    def test_compare_same_algorithm_no_changes(self, instance_dir, capsys):
        code = main(
            [
                "compare",
                str(instance_dir),
                "--baseline",
                "gta",
                "--challenger",
                "gta",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "winners=0 losers=0" in out

    def test_compare_accepts_n_jobs(self, instance_dir, capsys):
        code = main(
            [
                "compare",
                str(instance_dir),
                "--baseline",
                "gta",
                "--challenger",
                "fgt",
                "--epsilon",
                "0.6",
                "--n-jobs",
                "2",
            ]
        )
        assert code == 0
        assert "GTA -> FGT" in capsys.readouterr().out


class TestExperiment:
    def test_sweep_experiment(self, capsys):
        code = main(["experiment", "fig4", "--scale", "smoke", "--seed", "0"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Payoff Difference" in out
        assert "CPU Time" in out

    def test_convergence_experiment(self, capsys):
        code = main(["experiment", "fig12", "--scale", "smoke"])
        assert code == 0
        assert "payoff difference per iteration" in capsys.readouterr().out

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            main(["experiment", "fig99"])

    def test_extension_experiment(self, capsys):
        code = main(["experiment", "ext-metric", "--scale", "smoke"])
        assert code == 0
        out = capsys.readouterr().out
        assert "manhattan" in out and "euclidean" in out


class TestTrace:
    def test_trace_prometheus_flag(self, tmp_path, capsys):
        code = main(
            [
                "trace",
                "--algo",
                "fgt",
                "--scale",
                "smoke",
                "--seed",
                "0",
                "--output",
                str(tmp_path / "trace.jsonl"),
                "--prometheus",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_" in out
        assert (tmp_path / "trace.jsonl").exists()


class TestTraceAnalyze:
    @staticmethod
    def _write_trace(path):
        from repro.obs.tracer import JsonlTracer, start_trace

        with JsonlTracer(path) as tracer:
            with start_trace("aa" * 8):
                with tracer.span("service.round", round=0):
                    with tracer.span(
                        "service.center_solve", center="A", round=0
                    ):
                        pass

    def test_analyze_prints_report(self, tmp_path, capsys):
        path = tmp_path / "t.jsonl"
        self._write_trace(path)
        code = main(["trace", "analyze", str(path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "critical path" in out
        assert "center=A" in out

    def test_analyze_json_output(self, tmp_path, capsys):
        import json

        path = tmp_path / "t.jsonl"
        self._write_trace(path)
        code = main(["trace", "analyze", str(path), "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["orphans"] == 0
        assert payload["traces"] == 1
        assert payload["rounds"][0]["round_index"] == 0

    def test_analyze_fails_on_orphans(self, tmp_path, capsys):
        import json

        path = tmp_path / "t.jsonl"
        path.write_text(
            json.dumps(
                {
                    "kind": "service.rung", "seq": 0, "ts": 0.1, "dur": 0.01,
                    "trace": "bb" * 8, "span": "s1", "parent": "missing",
                }
            )
            + "\n"
        )
        code = main(["trace", "analyze", str(path)])
        assert code == 1
        assert "orphan" in capsys.readouterr().err

    def test_analyze_missing_file_fails(self, tmp_path, capsys):
        code = main(["trace", "analyze", str(tmp_path / "nope.jsonl")])
        assert code == 1

    def test_plain_trace_run_still_parses(self, tmp_path, capsys):
        # The nested subcommand must not break the legacy invocation.
        code = main(
            [
                "trace",
                "--algo",
                "fgt",
                "--scale",
                "smoke",
                "--output",
                str(tmp_path / "t.jsonl"),
            ]
        )
        assert code == 0
        # ... and the file it writes is analyzable.
        code = main(["trace", "analyze", str(tmp_path / "t.jsonl")])
        assert code == 0


class TestServe:
    def test_serve_round_trip(self, tmp_path, capsys):
        # Drive the real `serve` command from a helper thread: wait for the
        # port file, run one dispatch round, then ask for graceful shutdown.
        from repro.service import DispatchClient

        port_file = tmp_path / "port.txt"
        failures = []

        def drive():
            try:
                deadline = time.monotonic() + 15.0
                while time.monotonic() < deadline:
                    if port_file.exists() and port_file.read_text().strip():
                        break
                    time.sleep(0.05)
                port = int(port_file.read_text())
                client = DispatchClient(f"http://127.0.0.1:{port}", timeout=5.0)
                client.wait_healthy(timeout=10.0)
                result = client.dispatch()
                if result["assigned_tasks"] <= 0:
                    failures.append(f"no tasks assigned: {result}")
                client.shutdown()
            except Exception as exc:  # surfaced after main() returns
                failures.append(repr(exc))

        driver = threading.Thread(target=drive)
        driver.start()
        code = main(
            [
                "serve",
                "--port",
                "0",
                "--port-file",
                str(port_file),
                "--epsilon",
                "0.8",
                "--seed",
                "0",
                "--tasks",
                "30",
                "--workers",
                "6",
                "--delivery-points",
                "12",
            ]
        )
        driver.join(timeout=15.0)
        assert code == 0
        assert failures == []
        out = capsys.readouterr().out
        assert "dispatch service listening on" in out
        assert "served 1 dispatch rounds" in out
        assert "service.tasks.assigned" in out  # final metrics dump


class TestVerify:
    def test_verify_smoke_scale_exits_zero(self, capsys):
        code = main(
            ["verify", "--experiment", "fig2", "--scale", "smoke", "--seed", "0"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "all invariant checks passed" in out
        assert "assignment.disjointness" in out
        assert "fgt.pure-nash" in out or "fgt.potential-monotone" in out

    def test_verify_syn_experiment(self, capsys):
        code = main(
            ["verify", "--experiment", "fig3", "--scale", "smoke", "--seed", "1"]
        )
        assert code == 0
        assert "iegt.iess" in capsys.readouterr().out

    def test_verify_single_algorithm_selection(self, capsys):
        code = main(
            [
                "verify",
                "--experiment",
                "fig2",
                "--scale",
                "smoke",
                "--algorithms",
                "gta",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "GTA" in out
        assert "fgt.switch-improving" not in out

    def test_verify_unknown_algorithm_rejected(self, capsys):
        code = main(
            ["verify", "--experiment", "fig2", "--algorithms", "nope"]
        )
        assert code == 2
        assert "unknown algorithm" in capsys.readouterr().err

    def test_verify_full_sweep_smoke(self, capsys):
        code = main(
            ["verify", "--experiment", "fig2", "--scale", "smoke", "--full"]
        )
        assert code == 0
        assert "all invariant checks passed" in capsys.readouterr().out
