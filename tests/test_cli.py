"""Tests for the command-line interface (python -m repro)."""

import csv

import pytest

from repro.cli import main


class TestListExperiments:
    def test_lists_all_figures(self, capsys):
        assert main(["list-experiments"]) == 0
        out = capsys.readouterr().out
        for fig in range(2, 13):
            assert f"fig{fig}:" in out


class TestGenerate:
    def test_gm_generation(self, tmp_path, capsys):
        code = main(
            [
                "generate",
                str(tmp_path / "gm"),
                "--dataset",
                "gm",
                "--tasks",
                "50",
                "--workers",
                "6",
                "--delivery-points",
                "12",
                "--seed",
                "1",
            ]
        )
        assert code == 0
        assert (tmp_path / "gm" / "tasks.csv").exists()
        assert "|S|=50" in capsys.readouterr().out

    def test_syn_generation(self, tmp_path, capsys):
        code = main(
            [
                "generate",
                str(tmp_path / "syn"),
                "--dataset",
                "syn",
                "--centers",
                "2",
                "--tasks",
                "200",
                "--workers",
                "10",
                "--delivery-points",
                "30",
            ]
        )
        assert code == 0
        assert "|DC|=2" in capsys.readouterr().out


class TestSolve:
    @pytest.fixture
    def instance_dir(self, tmp_path):
        main(
            [
                "generate",
                str(tmp_path / "inst"),
                "--dataset",
                "gm",
                "--tasks",
                "60",
                "--workers",
                "8",
                "--delivery-points",
                "15",
                "--seed",
                "2",
            ]
        )
        return tmp_path / "inst"

    @pytest.mark.parametrize("algorithm", ["gta", "fgt", "iegt", "random"])
    def test_each_algorithm_runs(self, instance_dir, capsys, algorithm):
        code = main(
            ["solve", str(instance_dir), "--algorithm", algorithm, "--epsilon", "0.6"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "payoff difference" in out
        assert "average payoff" in out

    def test_assignment_csv_written(self, instance_dir, tmp_path, capsys):
        target = tmp_path / "out" / "assignment.csv"
        code = main(
            [
                "solve",
                str(instance_dir),
                "--algorithm",
                "gta",
                "--epsilon",
                "0.6",
                "--output",
                str(target),
            ]
        )
        assert code == 0
        with target.open(newline="") as fh:
            rows = list(csv.DictReader(fh))
        assert len(rows) == 8
        assert set(rows[0]) == {"worker_id", "center_id", "route", "payoff"}

    def test_solve_deterministic(self, instance_dir, capsys):
        main(["solve", str(instance_dir), "--algorithm", "iegt", "--seed", "5"])
        first = capsys.readouterr().out
        main(["solve", str(instance_dir), "--algorithm", "iegt", "--seed", "5"])
        second = capsys.readouterr().out
        assert first == second


class TestCompare:
    @pytest.fixture
    def instance_dir(self, tmp_path):
        main(
            [
                "generate",
                str(tmp_path / "inst"),
                "--dataset",
                "gm",
                "--tasks",
                "60",
                "--workers",
                "8",
                "--delivery-points",
                "15",
                "--seed",
                "2",
            ]
        )
        return tmp_path / "inst"

    def test_compare_output(self, instance_dir, capsys):
        code = main(
            [
                "compare",
                str(instance_dir),
                "--baseline",
                "gta",
                "--challenger",
                "iegt",
                "--epsilon",
                "0.6",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "GTA -> IEGT" in out
        assert "winners=" in out and "losers=" in out

    def test_compare_same_algorithm_no_changes(self, instance_dir, capsys):
        code = main(
            [
                "compare",
                str(instance_dir),
                "--baseline",
                "gta",
                "--challenger",
                "gta",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "winners=0 losers=0" in out


class TestExperiment:
    def test_sweep_experiment(self, capsys):
        code = main(["experiment", "fig4", "--scale", "smoke", "--seed", "0"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Payoff Difference" in out
        assert "CPU Time" in out

    def test_convergence_experiment(self, capsys):
        code = main(["experiment", "fig12", "--scale", "smoke"])
        assert code == 0
        assert "payoff difference per iteration" in capsys.readouterr().out

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            main(["experiment", "fig99"])

    def test_extension_experiment(self, capsys):
        code = main(["experiment", "ext-metric", "--scale", "smoke"])
        assert code == 0
        out = capsys.readouterr().out
        assert "manhattan" in out and "euclidean" in out


class TestVerify:
    def test_verify_smoke_scale_exits_zero(self, capsys):
        code = main(
            ["verify", "--experiment", "fig2", "--scale", "smoke", "--seed", "0"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "all invariant checks passed" in out
        assert "assignment.disjointness" in out
        assert "fgt.pure-nash" in out or "fgt.potential-monotone" in out

    def test_verify_syn_experiment(self, capsys):
        code = main(
            ["verify", "--experiment", "fig3", "--scale", "smoke", "--seed", "1"]
        )
        assert code == 0
        assert "iegt.iess" in capsys.readouterr().out

    def test_verify_single_algorithm_selection(self, capsys):
        code = main(
            [
                "verify",
                "--experiment",
                "fig2",
                "--scale",
                "smoke",
                "--algorithms",
                "gta",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "GTA" in out
        assert "fgt.switch-improving" not in out

    def test_verify_unknown_algorithm_rejected(self, capsys):
        code = main(
            ["verify", "--experiment", "fig2", "--algorithms", "nope"]
        )
        assert code == 2
        assert "unknown algorithm" in capsys.readouterr().err

    def test_verify_full_sweep_smoke(self, capsys):
        code = main(
            ["verify", "--experiment", "fig2", "--scale", "smoke", "--full"]
        )
        assert code == 0
        assert "all invariant checks passed" in capsys.readouterr().out
