"""Tests for repro.vdps.generator (Algorithm 1)."""

import numpy as np
import pytest

from repro.core.routing import brute_force_best_route
from repro.geo.travel import TravelModel
from repro.vdps.generator import generate_cvdps, generate_cvdps_reference

from tests.conftest import make_center, make_dp, unit_speed_travel


def _random_center(n_points, seed, side=6.0, expiry_low=2.0, expiry_high=8.0):
    rng = np.random.default_rng(seed)
    dps = [
        make_dp(
            f"p{i}",
            float(rng.uniform(0, side)),
            float(rng.uniform(0, side)),
            n_tasks=int(rng.integers(1, 4)),
            expiry=float(rng.uniform(expiry_low, expiry_high)),
        )
        for i in range(n_points)
    ]
    return make_center(dps, x=side / 2, y=side / 2)


@pytest.fixture
def travel():
    return unit_speed_travel()


class TestBasics:
    def test_empty_center(self, travel):
        assert generate_cvdps(make_center([]), travel) == []

    def test_single_reachable_point(self, travel):
        center = make_center([make_dp("a", 1, 0, expiry=2.0)])
        entries = generate_cvdps(center, travel)
        assert len(entries) == 1
        assert entries[0].point_ids == frozenset({"a"})
        assert entries[0].route.completion_time == pytest.approx(1.0)

    def test_unreachable_point_excluded(self, travel):
        center = make_center([make_dp("far", 10, 0, expiry=1.0)])
        assert generate_cvdps(center, travel) == []

    def test_max_size_zero(self, travel):
        center = make_center([make_dp("a", 1, 0)])
        assert generate_cvdps(center, travel, max_size=0) == []

    def test_max_size_caps_subsets(self, travel):
        center = make_center(
            [make_dp("a", 1, 0), make_dp("b", 2, 0), make_dp("c", 3, 0)]
        )
        entries = generate_cvdps(center, travel, max_size=2)
        assert max(e.size for e in entries) == 2
        # All 3 singletons and all 3 pairs are feasible on this line.
        assert len(entries) == 6

    def test_line_instance_full_enumeration(self, travel, line_center):
        entries = generate_cvdps(line_center, travel)
        # All 7 non-empty subsets of {a, b, c} are feasible (expiry 10).
        assert len(entries) == 7
        triple = next(e for e in entries if e.size == 3)
        # Optimal order on a line is monotone: completion 3.0.
        assert triple.route.completion_time == pytest.approx(3.0)
        assert [dp.dp_id for dp in triple.route.sequence] == ["a", "b", "c"]

    def test_entry_reward_totals(self, travel, line_center):
        entries = generate_cvdps(line_center, travel)
        triple = next(e for e in entries if e.size == 3)
        assert triple.total_reward == pytest.approx(6.0)  # 2 + 1 + 3 tasks


class TestRouteOptimality:
    @pytest.mark.parametrize("seed", range(5))
    def test_recorded_sequence_is_minimal_time(self, travel, seed):
        center = _random_center(5, seed)
        for entry in generate_cvdps(center, travel):
            oracle = brute_force_best_route(
                center.location, list(entry.route.sequence), travel
            )
            assert oracle is not None
            assert entry.route.completion_time == pytest.approx(
                oracle.completion_time
            )

    def test_deadlines_respected_along_route(self, travel):
        center = _random_center(6, seed=11, expiry_low=1.0, expiry_high=4.0)
        for entry in generate_cvdps(center, travel):
            assert entry.route.is_valid_with_offset(0.0)


class TestReferenceEquivalence:
    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("epsilon", [None, 2.0, 3.5])
    def test_fast_equals_reference(self, travel, seed, epsilon):
        center = _random_center(6, seed, expiry_low=1.5, expiry_high=6.0)
        fast = generate_cvdps(center, travel, epsilon=epsilon)
        slow = generate_cvdps_reference(center, travel, epsilon=epsilon)
        assert [e.point_ids for e in fast] == [e.point_ids for e in slow]
        for f, s in zip(fast, slow):
            assert f.route.completion_time == pytest.approx(s.route.completion_time)

    @pytest.mark.parametrize("seed", range(3))
    def test_fast_equals_reference_with_cap(self, travel, seed):
        center = _random_center(7, seed)
        fast = generate_cvdps(center, travel, max_size=2)
        slow = generate_cvdps_reference(center, travel, max_size=2)
        assert [e.point_ids for e in fast] == [e.point_ids for e in slow]


class TestPruningSemantics:
    def test_epsilon_monotone(self, travel):
        center = _random_center(7, seed=3)
        small = {e.point_ids for e in generate_cvdps(center, travel, epsilon=1.0)}
        large = {e.point_ids for e in generate_cvdps(center, travel, epsilon=3.0)}
        unpruned = {e.point_ids for e in generate_cvdps(center, travel)}
        assert small <= large <= unpruned

    def test_singletons_unaffected_by_pruning(self, travel):
        center = _random_center(8, seed=4)
        pruned = {
            e.point_ids
            for e in generate_cvdps(center, travel, epsilon=0.0)
            if e.size == 1
        }
        unpruned = {
            e.point_ids for e in generate_cvdps(center, travel) if e.size == 1
        }
        assert pruned == unpruned

    def test_large_epsilon_equals_unpruned(self, travel):
        center = _random_center(6, seed=5)
        pruned = generate_cvdps(center, travel, epsilon=1000.0)
        unpruned = generate_cvdps(center, travel)
        assert [e.point_ids for e in pruned] == [e.point_ids for e in unpruned]

    def test_chain_constraint_blocks_far_pairs(self, travel):
        # a and b are 5 apart; with epsilon=2 the pair {a, b} cannot chain.
        center = make_center([make_dp("a", 1, 0), make_dp("b", 6, 0)])
        entries = generate_cvdps(center, travel, epsilon=2.0)
        assert {e.point_ids for e in entries} == {
            frozenset({"a"}),
            frozenset({"b"}),
        }


class TestDeterminism:
    def test_output_order_deterministic(self, travel):
        center = _random_center(6, seed=8)
        a = generate_cvdps(center, travel, epsilon=2.5)
        b = generate_cvdps(center, travel, epsilon=2.5)
        assert [e.point_ids for e in a] == [e.point_ids for e in b]
        assert [tuple(dp.dp_id for dp in e.route.sequence) for e in a] == [
            tuple(dp.dp_id for dp in e.route.sequence) for e in b
        ]
