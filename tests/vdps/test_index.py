"""Tests for the bitmask conflict index (CatalogIndex / WorkerIndex) and
the GameState mask bookkeeping that rides on it."""

import numpy as np
import pytest

from repro.core.instance import SubProblem
from repro.core.routing import Route
from repro.games.base import GameState
from repro.vdps.catalog import (
    CatalogIndex,
    WorkerStrategy,
    build_catalog,
)

from tests.conftest import make_center, make_dp, make_worker, unit_speed_travel


def _strategy(point_ids, payoff=1.0):
    """A bare hand-built strategy (route details don't matter here)."""
    return WorkerStrategy(frozenset(point_ids), Route((), ()), payoff)


@pytest.fixture
def sub():
    center = make_center(
        [
            make_dp("a", 1, 0, n_tasks=2),
            make_dp("b", 2, 0, n_tasks=1),
            make_dp("c", 3, 0, n_tasks=3),
        ]
    )
    workers = (make_worker("w1", 0, 0), make_worker("w2", 0, 0))
    return SubProblem(center, workers, unit_speed_travel())


@pytest.fixture
def catalog(sub):
    return build_catalog(sub)


class TestCatalogIndex:
    def test_bits_assigned_in_sorted_id_order(self):
        index = CatalogIndex(
            {"w": (_strategy({"z"}), _strategy({"a", "m"}))}
        )
        assert index.point_bits == {"a": 0, "m": 1, "z": 2}
        assert index.n_words == 1

    def test_empty_catalog_still_has_one_word(self):
        index = CatalogIndex({"w": ()})
        assert index.n_words == 1
        assert index.empty_mask().shape == (1,)
        assert index.worker("w").n_strategies == 0

    def test_masks_align_with_strategy_positions(self, catalog):
        index = catalog.index
        for wid in ("w1", "w2"):
            wi = index.worker(wid)
            strategies = catalog.strategies(wid)
            assert wi.n_strategies == len(strategies)
            for row, strategy in enumerate(strategies):
                assert np.array_equal(
                    wi.masks[row], index.mask_of(strategy.point_ids)
                )
                assert wi.payoffs[row] == strategy.payoff

    def test_size1_positions_in_catalog_order(self, catalog):
        for wid in ("w1", "w2"):
            wi = catalog.index.worker(wid)
            expected = [
                row
                for row, s in enumerate(catalog.strategies(wid))
                if s.size == 1
            ]
            assert wi.size1.tolist() == expected

    def test_unknown_worker_raises(self, catalog):
        with pytest.raises(KeyError, match="nope"):
            catalog.index.worker("nope")

    def test_mask_of_unknown_point_raises(self, catalog):
        with pytest.raises(KeyError):
            catalog.index.mask_of({"not-a-dp"})

    def test_index_is_built_lazily_and_cached(self, catalog):
        assert catalog._index is None  # no game solver has touched it yet
        first = catalog.index
        assert catalog.index is first

    def test_multiword_masks_beyond_64_points(self):
        # 70 points force a second uint64 word; conflicts crossing the
        # word boundary must still be detected.
        ids = [f"dp{i:03d}" for i in range(70)]
        index = CatalogIndex(
            {
                "w": (
                    _strategy(ids[:40]),  # bits 0-39, word 0
                    _strategy(ids[40:]),  # bits 40-69, spans both words
                    _strategy(ids[68:69]),  # bit 68, word 1 only
                )
            }
        )
        assert index.n_words == 2
        wi = index.worker("w")
        # Claim the high points: the two strategies touching them conflict.
        claimed = index.mask_of(ids[65:])
        assert wi.available(claimed).tolist() == [0]
        # Claim a low point: only the first strategy conflicts.
        claimed = index.mask_of(ids[:1])
        assert wi.available(claimed).tolist() == [1, 2]
        assert wi.available(index.empty_mask()).tolist() == [0, 1, 2]


class TestAvailabilityEquivalence:
    def test_available_matches_conflicts_with_filter(self, catalog):
        index = catalog.index
        for claimed_ids in ({}, {"a"}, {"a", "b"}, {"a", "b", "c"}):
            claimed = index.mask_of(claimed_ids)
            for wid in ("w1", "w2"):
                strategies = catalog.strategies(wid)
                expected = [
                    row
                    for row, s in enumerate(strategies)
                    if not s.conflicts_with(claimed_ids)
                ]
                assert index.worker(wid).available(claimed).tolist() == expected


class TestGameStateMasks:
    def test_switch_releases_old_bits(self, catalog):
        state = GameState(catalog)
        index = catalog.index
        s_a = next(s for s in catalog.strategies("w1") if s.point_ids == {"a"})
        s_b = next(s for s in catalog.strategies("w1") if s.point_ids == {"b"})
        state.set_strategy("w1", s_a)
        assert np.array_equal(state._claimed_words, index.mask_of({"a"}))
        state.set_strategy("w1", s_b)
        assert np.array_equal(state._claimed_words, index.mask_of({"b"}))

    def test_claimed_words_except_excludes_own_bits(self, catalog):
        state = GameState(catalog)
        s_a = next(s for s in catalog.strategies("w1") if s.point_ids == {"a"})
        s_b = next(s for s in catalog.strategies("w2") if s.point_ids == {"b"})
        state.set_strategy("w1", s_a)
        state.set_strategy("w2", s_b)
        index = catalog.index
        assert np.array_equal(
            state.claimed_words_except("w1"), index.mask_of({"b"})
        )
        assert np.array_equal(
            state.claimed_words_except("w2"), index.mask_of({"a"})
        )

    def test_indices_match_available_strategies(self, catalog):
        state = GameState(catalog)
        s_a = next(s for s in catalog.strategies("w1") if s.point_ids == {"a"})
        state.set_strategy("w1", s_a)
        for wid in ("w1", "w2"):
            strategies = catalog.strategies(wid)
            by_scan = state.available_strategies(wid)
            by_index = [
                strategies[i] for i in state.available_strategy_indices(wid)
            ]
            assert by_index == by_scan

    def test_foreign_strategy_degrades_to_dict_path(self, catalog):
        # A hand-built strategy over a point unknown to the catalog poisons
        # the mask mirror; availability must then fall back to the
        # authoritative dict bookkeeping and stay correct.
        state = GameState(catalog)
        foreign = _strategy({"ghost-dp"}, payoff=9.0)
        state.set_strategy("w1", foreign)
        assert not state._masks_exact
        s_a = next(s for s in catalog.strategies("w2") if s.point_ids == {"a"})
        state.set_strategy("w2", s_a)
        for wid in ("w1", "w2"):
            strategies = catalog.strategies(wid)
            by_scan = state.available_strategies(wid)
            by_index = [
                strategies[i] for i in state.available_strategy_indices(wid)
            ]
            assert by_index == by_scan
