"""Tests for repro.vdps.catalog (per-worker strategy spaces)."""

import pytest

from repro.core.instance import SubProblem
from repro.geo.travel import TravelModel
from repro.vdps.catalog import NULL_STRATEGY, WorkerStrategy, build_catalog
from repro.vdps.generator import generate_cvdps

from tests.conftest import make_center, make_dp, make_worker, unit_speed_travel


def _line_subproblem(workers):
    center = make_center(
        [
            make_dp("a", 1, 0, n_tasks=2, expiry=10.0),
            make_dp("b", 2, 0, n_tasks=1, expiry=10.0),
            make_dp("c", 3, 0, n_tasks=3, expiry=10.0),
        ]
    )
    return SubProblem(center, tuple(workers), unit_speed_travel())


class TestNullStrategy:
    def test_null_properties(self):
        assert NULL_STRATEGY.is_null
        assert NULL_STRATEGY.size == 0
        assert NULL_STRATEGY.payoff == 0.0
        assert not NULL_STRATEGY.conflicts_with({"a", "b"})


class TestBuildCatalog:
    def test_all_subsets_for_colocated_worker(self):
        sub = _line_subproblem([make_worker("w", 0, 0)])
        catalog = build_catalog(sub)
        # Worker at the center: all 7 C-VDPSs remain valid.
        assert len(catalog.strategies("w")) == 7
        assert catalog.cvdps_count == 7

    def test_maxdp_filters_sizes(self):
        sub = _line_subproblem([make_worker("w", 0, 0, max_dp=1)])
        catalog = build_catalog(sub)
        assert all(s.size == 1 for s in catalog.strategies("w"))
        assert len(catalog.strategies("w")) == 3

    def test_offset_invalidates_far_worker(self):
        # Worker 9 km from the center: even the nearest point (arrival 10)
        # violates every expiry of 10 - epsilon.
        center = make_center([make_dp("a", 1, 0, expiry=9.5)])
        sub = SubProblem(center, (make_worker("w", -9, 0),), unit_speed_travel())
        catalog = build_catalog(sub)
        assert catalog.strategies("w") == ()
        assert not catalog.has_strategies("w")

    def test_payoffs_include_offset(self):
        # Worker 1 km behind the center: payoff = reward / (1 + arrival).
        sub = _line_subproblem([make_worker("w", -1, 0)])
        catalog = build_catalog(sub)
        singleton_a = next(
            s for s in catalog.strategies("w") if s.point_ids == {"a"}
        )
        assert singleton_a.payoff == pytest.approx(2.0 / 2.0)
        assert singleton_a.route.arrival_times[0] == pytest.approx(2.0)

    def test_strategies_sorted_by_payoff(self):
        sub = _line_subproblem([make_worker("w", 0, 0)])
        payoffs = [s.payoff for s in build_catalog(sub).strategies("w")]
        assert payoffs == sorted(payoffs, reverse=True)

    def test_unknown_worker_raises(self):
        catalog = build_catalog(_line_subproblem([make_worker("w", 0, 0)]))
        with pytest.raises(KeyError, match="ghost"):
            catalog.strategies("ghost")

    def test_offline_workers_excluded(self):
        online = make_worker("on", 0, 0)
        offline = make_worker("off", 0, 0).offline()
        catalog = build_catalog(_line_subproblem([online, offline]))
        assert [w.worker_id for w in catalog.workers] == ["on"]

    def test_shared_cvdps_reused(self):
        sub = _line_subproblem([make_worker("w", 0, 0)])
        entries = generate_cvdps(sub.center, sub.travel)
        catalog = build_catalog(sub, cvdps=entries)
        assert catalog.cvdps_count == len(entries)

    def test_strict_revalidation_recovers_reordered_sets(self):
        # From the center the minimal-time order of {a, b} is (a, b) with b
        # reached at 1.306 < 1.4; with a 0.15 start offset that order misses
        # b's deadline (1.456 > 1.4) while (b, a) still makes it (b at
        # 1.15).  Only strict revalidation re-solves the order per worker.
        center = make_center(
            [
                make_dp("a", 0.5, 0.0, expiry=10.0),
                make_dp("b", 0.6, 0.8, expiry=1.4),
            ]
        )
        worker = make_worker("w", -0.15, 0)  # offset 0.15
        sub = SubProblem(center, (worker,), unit_speed_travel())
        lax = build_catalog(sub, strict_revalidation=False)
        strict = build_catalog(sub, strict_revalidation=True)
        lax_sets = {s.point_ids for s in lax.strategies("w")}
        strict_sets = {s.point_ids for s in strict.strategies("w")}
        assert frozenset({"a", "b"}) not in lax_sets
        assert frozenset({"a", "b"}) in strict_sets


class TestCatalogQueries:
    def test_available_excludes_conflicts(self):
        catalog = build_catalog(_line_subproblem([make_worker("w", 0, 0)]))
        available = catalog.available("w", claimed={"b"})
        assert all("b" not in s.point_ids for s in available)
        assert {s.point_ids for s in available} == {
            frozenset({"a"}),
            frozenset({"c"}),
            frozenset({"a", "c"}),
        }

    def test_available_with_no_claims(self):
        catalog = build_catalog(_line_subproblem([make_worker("w", 0, 0)]))
        assert len(catalog.available("w", claimed=())) == 7

    def test_max_vdps_size(self):
        catalog = build_catalog(_line_subproblem([make_worker("w", 0, 0)]))
        assert catalog.max_vdps_size == 3

    def test_total_strategy_count(self):
        catalog = build_catalog(
            _line_subproblem([make_worker("w1", 0, 0), make_worker("w2", 0, 0)])
        )
        assert catalog.total_strategy_count == 14

    def test_describe(self):
        catalog = build_catalog(
            _line_subproblem([make_worker("w", 0, 0)]), epsilon=2.5
        )
        assert "eps=2.5" in catalog.describe()
