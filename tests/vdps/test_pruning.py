"""Tests for repro.vdps.pruning (distance-constrained neighbour lists)."""

import numpy as np
import pytest

from repro.vdps.pruning import neighbor_lists

from tests.conftest import make_dp


def _grid_points(n, seed=0, side=10.0):
    rng = np.random.default_rng(seed)
    return [
        make_dp(f"p{i}", float(x), float(y))
        for i, (x, y) in enumerate(rng.uniform(0, side, (n, 2)))
    ]


class TestNeighborLists:
    def test_none_epsilon_means_complete(self):
        points = _grid_points(5)
        lists = neighbor_lists(points, None)
        for j, adjacent in enumerate(lists):
            assert sorted(adjacent) == [q for q in range(5) if q != j]

    def test_negative_epsilon_rejected(self):
        with pytest.raises(ValueError, match="epsilon"):
            neighbor_lists(_grid_points(3), -0.5)

    def test_zero_epsilon_isolates_distinct_points(self):
        points = _grid_points(6)
        assert all(not adj for adj in neighbor_lists(points, 0.0))

    def test_self_never_included(self):
        points = _grid_points(10)
        for j, adjacent in enumerate(neighbor_lists(points, 100.0)):
            assert j not in adjacent

    @pytest.mark.parametrize("epsilon", [0.5, 2.0, 6.0])
    def test_matches_brute_force_small(self, epsilon):
        points = _grid_points(30, seed=2)
        lists = neighbor_lists(points, epsilon)
        for j, adjacent in enumerate(lists):
            expected = sorted(
                q
                for q in range(30)
                if q != j
                and points[j].location.distance_to(points[q].location) <= epsilon
            )
            assert sorted(adjacent) == expected

    @pytest.mark.parametrize("epsilon", [0.5, 2.0])
    def test_indexed_path_matches_brute_force(self, epsilon):
        # Above the index threshold (64 points) the grid-index path is used.
        points = _grid_points(120, seed=5, side=15.0)
        lists = neighbor_lists(points, epsilon)
        for j in range(0, 120, 17):
            expected = sorted(
                q
                for q in range(120)
                if q != j
                and points[j].location.distance_to(points[q].location) <= epsilon
            )
            assert sorted(lists[j]) == expected

    def test_empty_input(self):
        assert neighbor_lists([], 1.0) == []
        assert neighbor_lists([], None) == []

    def test_symmetry(self):
        points = _grid_points(25, seed=7)
        lists = neighbor_lists(points, 3.0)
        for j, adjacent in enumerate(lists):
            for q in adjacent:
                assert j in lists[q]
