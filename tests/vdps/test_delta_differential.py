"""Seeded delta-vs-rebuild differential traces, including the degraded paths.

The Hypothesis machine (``tests/properties/test_catalog_delta.py``) covers
the broad churn space; this suite pins the corner cases a random walk may
miss — an empty center, a center draining to zero tasks and refilling, the
deadline-rejection boundary, a task id returning with a different deadline
— plus the non-surgery paths (rebuild fallback, structural fallback, cap
growth from zero) and the persistent store's failure modes.  Every
correctness assertion is the same one: :func:`catalog_diff` between the
maintained catalog and a from-scratch ``build_catalog`` is empty.
"""

import pickle
import random

import pytest

from repro.core.entities import DeliveryPoint, DistributionCenter, SpatialTask, Worker
from repro.core.instance import SubProblem
from repro.geo.point import Point
from repro.geo.travel import TravelModel
from repro.obs.metrics import METRICS
from repro.vdps.catalog import build_catalog
from repro.vdps.delta import DeltaCatalog, catalog_diff
from repro.vdps.store import STORE_FORMAT, CatalogStore

TRAVEL = TravelModel(speed_kmh=1.0)


def _dp(dp_id, x, y, *expiries, service=0.0):
    tasks = tuple(
        SpatialTask(f"{dp_id}_t{i}", dp_id, e) for i, e in enumerate(expiries)
    )
    return DeliveryPoint(dp_id, Point(x, y), tasks, service)


def _worker(wid, x, y, cap=3):
    return Worker(wid, Point(x, y), max_delivery_points=cap, center_id="dc")


def _sub(points, workers, travel=TRAVEL):
    center = DistributionCenter("dc", Point(0.0, 0.0), tuple(points))
    return SubProblem(center, tuple(workers), travel)


def _assert_equal(delta, sub, epsilon):
    refreshed = delta.refresh(sub)
    rebuilt = build_catalog(sub, epsilon=epsilon)
    diffs = catalog_diff(refreshed, rebuilt)
    assert not diffs, "; ".join(diffs)
    return refreshed


class TestDegradedTraces:
    """The ISSUE's named corner cases, each asserted against the oracle."""

    def test_empty_center(self):
        workers = [_worker("w0", 0.1, 0.1)]
        delta = DeltaCatalog(_sub([], workers), rebuild_fraction=10.0)
        assert delta.catalog.cvdps_count == 0
        # Growing from empty and shrinking back are both delta-served.
        _assert_equal(delta, _sub([_dp("a", 1.0, 0.0, 5.0)], workers), None)
        _assert_equal(delta, _sub([], workers), None)

    def test_center_drains_to_zero_tasks_and_refills(self):
        workers = [_worker("w0", 0.0, 0.0), _worker("w1", 0.5, 0.5, cap=2)]
        full = [_dp("a", 1.0, 0.0, 5.0), _dp("b", 0.0, 1.0, 6.0, 7.0)]
        delta = DeltaCatalog(_sub(full, workers), rebuild_fraction=10.0)
        # Tasks drain point by point; the points stay with empty queues.
        drained = [_dp("a", 1.0, 0.0), _dp("b", 0.0, 1.0, 6.0, 7.0)]
        _assert_equal(delta, _sub(drained, workers), None)
        empty = [_dp("a", 1.0, 0.0), _dp("b", 0.0, 1.0)]
        catalog = _assert_equal(delta, _sub(empty, workers), None)
        # Empty-queue points still form valid (zero-reward) VDPSs — the
        # maintained catalog must agree with the rebuild on that too.
        assert all(
            s.payoff == 0.0
            for w in catalog.workers
            for s in catalog.strategies(w.worker_id)
        )
        _assert_equal(delta, _sub(full, workers), None)

    def test_deadline_rejection_boundary(self):
        """A deadline tighter than the travel time prunes states, exactly
        like the full build, and the rejection is counted."""
        workers = [_worker("w0", 0.0, 0.0)]
        # 2 km at 1 km/h: reachable at t=2.0 only if the deadline allows.
        reachable = [_dp("far", 2.0, 0.0, 2.0)]
        delta = DeltaCatalog(_sub(reachable, workers), rebuild_fraction=10.0)
        assert delta.catalog.cvdps_count == 1
        before = METRICS.counter("cvdps.deadline_rejections").value
        too_tight = [_dp("far", 2.0, 0.0, 1.999)]
        catalog = _assert_equal(delta, _sub(too_tight, workers), None)
        assert catalog.cvdps_count == 0
        assert METRICS.counter("cvdps.deadline_rejections").value > before
        # Back across the boundary: exactly reachable again.
        _assert_equal(delta, _sub(reachable, workers), None)

    def test_task_returns_same_id_changed_deadline(self):
        workers = [_worker("w0", 0.0, 0.0)]
        original = [_dp("a", 1.0, 0.0, 4.0), _dp("b", 0.0, 1.5, 5.0)]
        delta = DeltaCatalog(_sub(original, workers), rebuild_fraction=10.0)
        gone = [_dp("b", 0.0, 1.5, 5.0)]
        _assert_equal(delta, _sub(gone, workers), None)
        # Same dp id and task id, different deadline: a changed point, not
        # a stale-cache hit.
        returned = [_dp("a", 1.0, 0.0, 9.0), _dp("b", 0.0, 1.5, 5.0)]
        catalog = _assert_equal(delta, _sub(returned, workers), None)
        strategies = catalog.strategies("w0")
        assert any("a" in s.point_ids for s in strategies)


class TestFallbacks:
    """Rebuild fallbacks must produce the same output as the delta path."""

    def test_rebuild_fraction_zero_always_falls_back(self):
        workers = [_worker("w0", 0.0, 0.0)]
        points = [_dp("a", 1.0, 0.0, 5.0), _dp("b", 0.0, 1.0, 5.0)]
        delta = DeltaCatalog(_sub(points, workers), rebuild_fraction=0.0)
        before = METRICS.counter("catalog.delta_fallbacks").value
        churned = points + [_dp("c", 0.5, 0.5, 4.0)]
        _assert_equal(delta, _sub(churned, workers), None)
        assert METRICS.counter("catalog.delta_fallbacks").value == before + 1

    def test_structural_change_falls_back(self):
        workers = [_worker("w0", 0.0, 0.0)]
        points = [_dp("a", 1.0, 0.0, 5.0)]
        delta = DeltaCatalog(_sub(points, workers), rebuild_fraction=10.0)
        before = METRICS.counter("catalog.delta_fallbacks").value
        # A different travel speed rewrites every arrival time: no delta
        # can express it, so the refresh must rebuild — and still match.
        faster = TravelModel(speed_kmh=2.0)
        sub = _sub(points, workers, travel=faster)
        refreshed = delta.refresh(sub)
        assert METRICS.counter("catalog.delta_fallbacks").value == before + 1
        assert not catalog_diff(refreshed, build_catalog(sub))

    def test_cap_growth_from_zero_falls_back(self):
        points = [_dp("a", 1.0, 0.0, 5.0), _dp("b", 0.0, 1.0, 5.0)]
        delta = DeltaCatalog(_sub(points, []), rebuild_fraction=10.0)
        assert delta.cap_built == 0
        workers = [_worker("w0", 0.0, 0.0, cap=2)]
        _assert_equal(delta, _sub(points, workers), None)
        assert delta.cap_built == 2

    def test_cap_growth_and_shrink(self):
        points = [
            _dp("a", 1.0, 0.0, 8.0),
            _dp("b", 0.0, 1.0, 8.0),
            _dp("c", 1.0, 1.0, 8.0),
        ]
        workers = [_worker("w0", 0.0, 0.0, cap=1)]
        delta = DeltaCatalog(_sub(points, workers), rebuild_fraction=10.0)
        grown = [_worker("w0", 0.0, 0.0, cap=3)]
        _assert_equal(delta, _sub(points, grown), None)
        shrunk = [_worker("w0", 0.0, 0.0, cap=2)]
        catalog = _assert_equal(delta, _sub(points, shrunk), None)
        assert all(len(s.point_ids) <= 2 for s in catalog.strategies("w0"))

    def test_noop_refresh_returns_same_catalog(self):
        points = [_dp("a", 1.0, 0.0, 5.0)]
        workers = [_worker("w0", 0.0, 0.0)]
        delta = DeltaCatalog(_sub(points, workers), rebuild_fraction=10.0)
        first = delta.catalog
        before = METRICS.counter("catalog.delta_noops").value
        assert delta.refresh(_sub(points, workers)) is first
        assert METRICS.counter("catalog.delta_noops").value == before + 1


class TestRandomTraces:
    """Longer seeded walks with verify=True (the internal oracle)."""

    @pytest.mark.parametrize("seed", [0, 1, 7, 13])
    def test_seeded_churn_walk(self, seed):
        rng = random.Random(seed)
        points = {
            f"p{i}": _dp(f"p{i}", rng.uniform(-2, 2), rng.uniform(-2, 2), 6.0)
            for i in range(5)
        }
        workers = {
            f"w{j}": _worker(f"w{j}", rng.uniform(-1, 1), rng.uniform(-1, 1),
                             cap=rng.choice([1, 2, 3]))
            for j in range(3)
        }
        next_id = [5]
        delta = DeltaCatalog(
            _sub(points.values(), workers.values()),
            epsilon=2.0,
            rebuild_fraction=10.0,
            verify=True,  # asserts delta == rebuild inside every refresh
        )
        for _ in range(25):
            op = rng.choice(["add", "remove", "change", "worker"])
            if op == "add":
                dp_id = f"p{next_id[0]}"
                next_id[0] += 1
                points[dp_id] = _dp(
                    dp_id, rng.uniform(-2, 2), rng.uniform(-2, 2),
                    rng.uniform(0.5, 8.0),
                )
            elif op == "remove" and points:
                del points[rng.choice(sorted(points))]
            elif op == "change" and points:
                dp_id = rng.choice(sorted(points))
                old = points[dp_id]
                points[dp_id] = _dp(
                    dp_id, old.location.x, old.location.y, rng.uniform(0.5, 8.0)
                )
            elif op == "worker":
                wid = rng.choice(sorted(workers))
                workers[wid] = _worker(
                    wid, rng.uniform(-1, 1), rng.uniform(-1, 1),
                    cap=rng.choice([1, 2, 3, 4]),
                )
            delta.refresh(_sub(points.values(), workers.values()))


class TestCatalogStore:
    def _delta(self):
        points = [_dp("a", 1.0, 0.0, 5.0), _dp("b", 0.0, 1.0, 6.0)]
        workers = [_worker("w0", 0.0, 0.0)]
        return _sub(points, workers), DeltaCatalog(
            _sub(points, workers), epsilon=2.0, rebuild_fraction=10.0
        )

    def test_roundtrip_then_refresh(self, tmp_path):
        sub, delta = self._delta()
        store = CatalogStore(tmp_path)
        assert store.save("dc", "fp1", delta)
        loaded = store.load("dc", 2.0)
        assert loaded is not None
        fingerprint, restored = loaded
        assert fingerprint == "fp1"
        # The materialised catalog is dropped from the pickle...
        with pytest.raises(RuntimeError, match="refresh"):
            restored.catalog
        # ...and one refresh restores bit-identity, churn included.
        churned = _sub(
            [_dp("a", 1.0, 0.0, 5.0), _dp("c", 0.5, 0.5, 3.0)],
            [_worker("w0", 0.0, 0.0)],
        )
        refreshed = restored.refresh(churned)
        assert not catalog_diff(refreshed, build_catalog(churned, epsilon=2.0))

    def test_epsilon_and_center_mismatch_are_misses(self, tmp_path):
        _, delta = self._delta()
        store = CatalogStore(tmp_path)
        store.save("dc", "fp1", delta)
        assert store.load("dc", None) is None
        assert store.load("other", 2.0) is None

    def test_corrupt_file_is_a_miss(self, tmp_path):
        _, delta = self._delta()
        store = CatalogStore(tmp_path)
        store.save("dc", "fp1", delta)
        store.path_for("dc").write_bytes(b"\x80\x04garbage")
        before = METRICS.counter("catalog.delta_store_errors").value
        assert store.load("dc", 2.0) is None
        assert METRICS.counter("catalog.delta_store_errors").value == before + 1

    def test_format_skew_is_a_miss(self, tmp_path):
        _, delta = self._delta()
        store = CatalogStore(tmp_path)
        payload = {
            "format": STORE_FORMAT + 1,
            "center_id": "dc",
            "fingerprint": "fp1",
            "epsilon": 2.0,
            "delta": delta,
        }
        store.path_for("dc").write_bytes(pickle.dumps(payload))
        assert store.load("dc", 2.0) is None

    def test_clear_removes_files(self, tmp_path):
        _, delta = self._delta()
        store = CatalogStore(tmp_path)
        store.save("dc", "fp1", delta)
        store.save("dc2", "fp2", delta)  # center_id mismatch on load is fine
        assert store.clear() == 2
        assert store.load("dc", 2.0) is None

    def test_sanitises_hostile_center_ids(self, tmp_path):
        store = CatalogStore(tmp_path)
        path = store.path_for("../evil/center")
        assert path.parent == tmp_path
        assert "/" not in path.name
