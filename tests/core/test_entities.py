"""Tests for repro.core.entities (Definitions 1-4)."""

import math

import pytest

from repro.core.entities import DeliveryPoint, DistributionCenter, SpatialTask, Worker
from repro.geo.point import Point

from tests.conftest import make_dp, make_tasks


class TestSpatialTask:
    def test_valid(self):
        t = SpatialTask("t1", "dp1", expiry=2.5, reward=1.0)
        assert t.expiry == 2.5
        assert t.reward == 1.0

    def test_default_reward_is_one(self):
        assert SpatialTask("t1", "dp1", expiry=1.0).reward == 1.0

    @pytest.mark.parametrize("expiry", [-0.1, float("nan"), float("inf")])
    def test_bad_expiry(self, expiry):
        with pytest.raises(ValueError, match="expiry"):
            SpatialTask("t1", "dp1", expiry=expiry)

    @pytest.mark.parametrize("reward", [-1.0, float("nan")])
    def test_bad_reward(self, reward):
        with pytest.raises(ValueError, match="reward"):
            SpatialTask("t1", "dp1", expiry=1.0, reward=reward)

    def test_empty_ids_rejected(self):
        with pytest.raises(ValueError, match="task_id"):
            SpatialTask("", "dp1", expiry=1.0)
        with pytest.raises(ValueError, match="delivery_point_id"):
            SpatialTask("t1", "", expiry=1.0)

    def test_ordering_and_hash(self):
        a = SpatialTask("a", "dp1", expiry=1.0)
        b = SpatialTask("b", "dp1", expiry=1.0)
        assert a < b
        assert len({a, b, a}) == 2


class TestDeliveryPoint:
    def test_valid_with_tasks(self):
        dp = make_dp("dp1", 1.0, 2.0, n_tasks=3, expiry=4.0)
        assert dp.task_count == 3
        assert dp.total_reward == 3.0
        assert dp.earliest_expiry == 4.0

    def test_earliest_expiry_is_minimum(self):
        tasks = (
            SpatialTask("t1", "dp1", expiry=5.0),
            SpatialTask("t2", "dp1", expiry=2.0),
            SpatialTask("t3", "dp1", expiry=9.0),
        )
        dp = DeliveryPoint("dp1", Point(0, 0), tasks)
        assert dp.earliest_expiry == 2.0

    def test_empty_point_has_infinite_expiry(self):
        dp = DeliveryPoint("dp1", Point(0, 0))
        assert math.isinf(dp.earliest_expiry)
        assert dp.total_reward == 0.0

    def test_task_of_other_point_rejected(self):
        stray = SpatialTask("t1", "other", expiry=1.0)
        with pytest.raises(ValueError, match="belongs to delivery point"):
            DeliveryPoint("dp1", Point(0, 0), (stray,))

    def test_location_type_checked(self):
        with pytest.raises(TypeError, match="location"):
            DeliveryPoint("dp1", (0, 0))

    def test_with_tasks_copies(self):
        dp = DeliveryPoint("dp1", Point(0, 0))
        replacement = dp.with_tasks(make_tasks("dp1", 2))
        assert replacement.task_count == 2
        assert dp.task_count == 0

    def test_hash_by_id(self):
        a = make_dp("dp1", 0.0, 0.0)
        b = make_dp("dp1", 1.0, 1.0)
        assert hash(a) == hash(b)
        assert a != b  # equality still compares content


class TestDistributionCenter:
    def test_tasks_is_union(self):
        dps = [make_dp("a", 0, 0, n_tasks=2), make_dp("b", 1, 1, n_tasks=3)]
        dc = DistributionCenter("dc0", Point(0, 0), tuple(dps))
        assert dc.task_count == 5
        assert len(dc.tasks) == 5

    def test_duplicate_dp_ids_rejected(self):
        dps = (make_dp("a", 0, 0), make_dp("a", 1, 1))
        with pytest.raises(ValueError, match="duplicate"):
            DistributionCenter("dc0", Point(0, 0), dps)

    def test_lookup(self):
        dp = make_dp("a", 0, 0)
        dc = DistributionCenter("dc0", Point(0, 0), (dp,))
        assert dc.delivery_point("a") is dp
        with pytest.raises(KeyError):
            dc.delivery_point("missing")

    def test_empty_id_rejected(self):
        with pytest.raises(ValueError, match="center_id"):
            DistributionCenter("", Point(0, 0))


class TestWorker:
    def test_valid(self):
        w = Worker("w1", Point(1, 2), max_delivery_points=4, center_id="dc0")
        assert w.online
        assert w.max_delivery_points == 4

    @pytest.mark.parametrize("bad", [0, -1, 2.5])
    def test_bad_max_dp(self, bad):
        with pytest.raises(ValueError, match="max_delivery_points"):
            Worker("w1", Point(0, 0), max_delivery_points=bad)

    def test_assigned_to(self):
        w = Worker("w1", Point(0, 0))
        assert w.center_id is None
        w2 = w.assigned_to("dc3")
        assert w2.center_id == "dc3"
        assert w.center_id is None  # original untouched

    def test_offline(self):
        w = Worker("w1", Point(0, 0))
        assert not w.offline().online
        assert w.online

    def test_hash_by_id(self):
        assert hash(Worker("w1", Point(0, 0))) == hash(Worker("w1", Point(5, 5)))
