"""Tests for repro.core.priority (priority-aware fairness extension)."""

import numpy as np
import pytest

from repro.core.fairness import InequityAversion
from repro.core.payoff import payoff_difference
from repro.core.priority import (
    PriorityModel,
    priority_inequity_utilities,
    priority_payoff_difference,
)


class TestPriorityModel:
    def test_missing_workers_default_to_one(self):
        model = PriorityModel({"a": 2.0})
        assert model.priority_of("a") == 2.0
        assert model.priority_of("b") == 1.0

    def test_non_positive_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            PriorityModel({"a": 0.0})
        with pytest.raises(ValueError, match="positive"):
            PriorityModel({"a": -1.0})

    def test_normalize(self):
        model = PriorityModel({"a": 2.0, "b": 4.0})
        normalized = model.normalize([4.0, 4.0, 3.0], ["a", "b", "c"])
        assert normalized == pytest.approx([2.0, 1.0, 3.0])

    def test_normalize_alignment_checked(self):
        with pytest.raises(ValueError, match="align"):
            PriorityModel().normalize([1.0], ["a", "b"])


class TestPriorityPayoffDifference:
    def test_proportional_payoffs_are_fair(self):
        model = PriorityModel({"a": 1.0, "b": 2.0, "c": 3.0})
        # Payoffs exactly proportional to priority: perfectly fair.
        assert priority_payoff_difference(
            [5.0, 10.0, 15.0], ["a", "b", "c"], model
        ) == pytest.approx(0.0)

    def test_equal_payoffs_unfair_under_priorities(self):
        model = PriorityModel({"a": 1.0, "b": 2.0})
        assert priority_payoff_difference([5.0, 5.0], ["a", "b"], model) > 0

    def test_unit_priorities_recover_plain_pdif(self):
        payoffs = [1.0, 4.0, 2.5]
        assert priority_payoff_difference(
            payoffs, ["a", "b", "c"], PriorityModel()
        ) == pytest.approx(payoff_difference(payoffs))


class TestPriorityUtilities:
    def test_unit_priorities_recover_plain_iau(self):
        inequity = InequityAversion()
        payoffs = [1.0, 3.0, 2.0]
        plain = inequity.utilities(payoffs)
        prio = priority_inequity_utilities(
            payoffs, ["a", "b", "c"], PriorityModel(), inequity
        )
        assert np.allclose(plain, prio)

    def test_high_priority_worker_tolerated_ahead(self):
        inequity = InequityAversion()
        model = PriorityModel({"vip": 2.0})
        # vip earns double: normalised payoffs equal -> no penalty at all.
        utilities = priority_inequity_utilities(
            [2.0, 1.0], ["vip", "plain"], model, inequity
        )
        assert utilities == pytest.approx([1.0, 1.0])
