"""Tests for repro.core.fairness (IAU, Equations 5-7; Gini; Jain)."""

import numpy as np
import pytest

from repro.core.fairness import InequityAversion, gini_coefficient, jain_index


def naive_iau(index, payoffs, alpha, beta):
    """Literal transcription of Equations 5-7."""
    n = len(payoffs)
    mine = payoffs[index]
    mp = sum(p - mine for p in payoffs if p > mine)
    lp = sum(mine - p for p in payoffs if p < mine)
    return mine - (alpha * mp + beta * lp) / (n - 1)


class TestInequityAversion:
    def test_defaults_are_paper_setting(self):
        model = InequityAversion()
        assert model.alpha == 0.5
        assert model.beta == 0.5

    def test_negative_weights_rejected(self):
        with pytest.raises(ValueError):
            InequityAversion(alpha=-0.1)
        with pytest.raises(ValueError):
            InequityAversion(beta=-0.1)

    def test_matches_naive_formula(self):
        model = InequityAversion(0.5, 0.5)
        payoffs = [3.0, 1.0, 4.0, 1.5]
        for i in range(4):
            assert model.utility(i, payoffs) == pytest.approx(
                naive_iau(i, payoffs, 0.5, 0.5)
            )

    @pytest.mark.parametrize("seed", range(6))
    def test_vectorised_matches_scalar(self, seed):
        rng = np.random.default_rng(seed)
        payoffs = rng.uniform(0, 10, size=int(rng.integers(2, 30))).tolist()
        alpha, beta = rng.uniform(0, 2, size=2)
        model = InequityAversion(float(alpha), float(beta))
        vector = model.utilities(payoffs)
        for i in range(len(payoffs)):
            assert vector[i] == pytest.approx(model.utility(i, payoffs))

    def test_equal_payoffs_give_raw_payoff(self):
        model = InequityAversion()
        payoffs = [2.5] * 5
        assert model.utilities(payoffs) == pytest.approx(payoffs)

    def test_penalty_reduces_utility(self):
        model = InequityAversion(0.5, 0.5)
        payoffs = [1.0, 5.0]
        assert model.utility(0, payoffs) < 1.0  # envy penalty
        assert model.utility(1, payoffs) < 5.0  # guilt penalty

    def test_single_worker_no_penalty(self):
        assert InequityAversion().utility(0, [7.0]) == 7.0
        assert InequityAversion().utilities([7.0]) == pytest.approx([7.0])

    def test_empty_population(self):
        assert InequityAversion().utilities([]).size == 0

    def test_index_out_of_range(self):
        with pytest.raises(IndexError):
            InequityAversion().utility(3, [1.0, 2.0])

    def test_potential_is_sum_of_utilities(self):
        model = InequityAversion()
        payoffs = [1.0, 2.0, 3.0]
        assert model.potential(payoffs) == pytest.approx(
            float(model.utilities(payoffs).sum())
        )

    def test_alpha_zero_ignores_envy(self):
        model = InequityAversion(alpha=0.0, beta=0.5)
        payoffs = [1.0, 10.0]
        assert model.utility(0, payoffs) == pytest.approx(1.0)

    def test_beta_zero_ignores_guilt(self):
        model = InequityAversion(alpha=0.5, beta=0.0)
        payoffs = [1.0, 10.0]
        assert model.utility(1, payoffs) == pytest.approx(10.0)


class TestGini:
    def test_equal_is_zero(self):
        assert gini_coefficient([4.0] * 6) == pytest.approx(0.0)

    def test_known_value(self):
        # One worker holds everything among n: gini = (n-1)/n.
        assert gini_coefficient([0.0, 0.0, 0.0, 10.0]) == pytest.approx(0.75)

    def test_empty_and_all_zero(self):
        assert gini_coefficient([]) == 0.0
        assert gini_coefficient([0.0, 0.0]) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            gini_coefficient([-1.0, 2.0])

    def test_bounds(self):
        rng = np.random.default_rng(0)
        values = rng.uniform(0, 5, 20)
        assert 0.0 <= gini_coefficient(values) <= 1.0


class TestJain:
    def test_equal_is_one(self):
        assert jain_index([3.0] * 9) == pytest.approx(1.0)

    def test_single_holder(self):
        # Jain of one non-zero among n is 1/n.
        assert jain_index([10.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)

    def test_empty_and_zero_default_to_one(self):
        assert jain_index([]) == 1.0
        assert jain_index([0.0, 0.0]) == 1.0

    def test_bounds(self):
        rng = np.random.default_rng(1)
        values = rng.uniform(0, 5, 25)
        assert 0.0 < jain_index(values) <= 1.0
