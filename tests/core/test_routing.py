"""Tests for repro.core.routing (Definition 5, VDPS sequencing)."""

import numpy as np
import pytest

from repro.core.routing import (
    Route,
    arrival_times,
    best_route,
    brute_force_best_route,
    route_is_valid,
)
from repro.geo.point import Point
from repro.geo.travel import TravelModel

from tests.conftest import make_dp, unit_speed_travel


@pytest.fixture
def travel():
    return unit_speed_travel()


ORIGIN = Point(0.0, 0.0)


class TestArrivalTimes:
    def test_recurrence_on_a_line(self, travel):
        seq = [make_dp("a", 1, 0), make_dp("b", 3, 0), make_dp("c", 6, 0)]
        assert arrival_times(ORIGIN, seq, travel) == pytest.approx([1.0, 3.0, 6.0])

    def test_start_offset_shifts_uniformly(self, travel):
        seq = [make_dp("a", 1, 0), make_dp("b", 2, 0)]
        base = arrival_times(ORIGIN, seq, travel)
        shifted = arrival_times(ORIGIN, seq, travel, start_offset=2.5)
        assert np.allclose(np.array(shifted) - np.array(base), 2.5)

    def test_empty_sequence(self, travel):
        assert arrival_times(ORIGIN, [], travel) == []

    def test_speed_scales_times(self):
        fast = TravelModel(speed_kmh=2.0)
        seq = [make_dp("a", 4, 0)]
        assert arrival_times(ORIGIN, seq, fast) == pytest.approx([2.0])


class TestRouteValidity:
    def test_valid_route(self, travel):
        seq = [make_dp("a", 1, 0, expiry=1.5), make_dp("b", 2, 0, expiry=2.5)]
        assert route_is_valid(ORIGIN, seq, travel)

    def test_deadline_violation_detected(self, travel):
        seq = [make_dp("a", 1, 0, expiry=0.5)]
        assert not route_is_valid(ORIGIN, seq, travel)

    def test_violation_via_offset(self, travel):
        seq = [make_dp("a", 1, 0, expiry=1.5)]
        assert route_is_valid(ORIGIN, seq, travel, start_offset=0.4)
        assert not route_is_valid(ORIGIN, seq, travel, start_offset=0.6)

    def test_intermediate_deadline_checked(self, travel):
        # Second point expires before it can be reached via the first.
        seq = [make_dp("a", 1, 0, expiry=5.0), make_dp("b", 2, 0, expiry=1.5)]
        assert not route_is_valid(ORIGIN, seq, travel)


class TestRouteObject:
    def test_completion_and_reward(self, travel):
        seq = (make_dp("a", 1, 0, n_tasks=2), make_dp("b", 2, 0, n_tasks=3))
        route = Route(seq, tuple(arrival_times(ORIGIN, seq, travel)))
        assert route.completion_time == pytest.approx(2.0)
        assert route.total_reward == pytest.approx(5.0)
        assert len(route) == 2

    def test_empty_route(self):
        route = Route((), ())
        assert route.completion_time == 0.0
        assert route.total_reward == 0.0

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError, match="equal length"):
            Route((make_dp("a", 1, 0),), ())

    def test_shifted(self, travel):
        seq = (make_dp("a", 1, 0),)
        route = Route(seq, (1.0,))
        assert route.shifted(0.5).arrival_times == (1.5,)

    def test_is_valid_with_offset(self):
        seq = (make_dp("a", 1, 0, expiry=2.0),)
        route = Route(seq, (1.0,))
        assert route.is_valid_with_offset(1.0)
        assert not route.is_valid_with_offset(1.1)


class TestBestRoute:
    def test_orders_by_travel_time(self, travel):
        # Optimal open path from origin visits a (1,0) then b (2,0).
        points = [make_dp("b", 2, 0), make_dp("a", 1, 0)]
        route = best_route(ORIGIN, points, travel)
        assert [dp.dp_id for dp in route.sequence] == ["a", "b"]
        assert route.completion_time == pytest.approx(2.0)

    def test_empty_input(self, travel):
        route = best_route(ORIGIN, [], travel)
        assert len(route) == 0

    def test_infeasible_returns_none(self, travel):
        points = [make_dp("far", 100, 0, expiry=1.0)]
        assert best_route(ORIGIN, points, travel) is None

    def test_deadline_forces_detour(self, travel):
        # b expires early, so it must be visited first even though a is nearer.
        points = [
            make_dp("a", 1, 0, expiry=100.0),
            make_dp("b", 2, 0, expiry=2.0),
        ]
        route = best_route(ORIGIN, points, travel)
        assert route is not None
        assert [dp.dp_id for dp in route.sequence][0] in {"a", "b"}
        assert route.is_valid_with_offset(0.0)

    def test_duplicate_ids_rejected(self, travel):
        points = [make_dp("a", 1, 0), make_dp("a", 2, 0)]
        with pytest.raises(ValueError, match="duplicate"):
            best_route(ORIGIN, points, travel)

    def test_respects_start_offset(self, travel):
        points = [make_dp("a", 1, 0, expiry=1.5)]
        assert best_route(ORIGIN, points, travel, start_offset=0.4) is not None
        assert best_route(ORIGIN, points, travel, start_offset=0.6) is None

    @pytest.mark.parametrize("seed", range(6))
    def test_matches_brute_force(self, travel, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 6))
        points = [
            make_dp(
                f"p{i}",
                float(rng.uniform(0, 5)),
                float(rng.uniform(0, 5)),
                expiry=float(rng.uniform(2, 9)),
            )
            for i in range(n)
        ]
        fast = best_route(ORIGIN, points, travel)
        slow = brute_force_best_route(ORIGIN, points, travel)
        if slow is None:
            assert fast is None
        else:
            assert fast is not None
            assert fast.completion_time == pytest.approx(slow.completion_time)
            assert fast.is_valid_with_offset(0.0)
