"""Tests for repro.core.payoff, including the paper's Figure 1 example."""

import numpy as np
import pytest

from repro.core.payoff import (
    average_payoff,
    payoff_difference,
    payoff_difference_naive,
    payoff_range,
    worker_payoff,
)
from repro.core.routing import Route, arrival_times
from repro.geo.point import Point
from repro.geo.travel import TravelModel

from tests.conftest import make_dp


class TestWorkerPayoff:
    def test_null_strategy_is_zero(self):
        assert worker_payoff(None) == 0.0
        assert worker_payoff(Route((), ())) == 0.0

    def test_reward_over_completion(self):
        seq = (make_dp("a", 1, 0, n_tasks=3),)
        route = Route(seq, (2.0,))
        assert worker_payoff(route) == pytest.approx(1.5)

    def test_zero_completion_rejected(self):
        seq = (make_dp("a", 0, 0, n_tasks=1),)
        with pytest.raises(ValueError, match="completion time"):
            worker_payoff(Route(seq, (0.0,)))

    def test_paper_figure1_worked_example(self):
        """Reconstruct Figure 1: payoff (6+3+4)/(1+1.41+1.12+1.12) = 2.80.

        dc at (2,2), worker w1 at (1,2); dp1 (1,1) with 6 tasks, dp2
        (2,0.5) with 3 tasks, dp3 (3,1) with 4 tasks; unit rewards, unit
        speed.  Visiting (dp1, dp2, dp3) yields the paper's payoff 2.80.
        """
        travel = TravelModel(speed_kmh=1.0)
        dc = Point(2.0, 2.0)
        w1 = Point(1.0, 2.0)
        seq = (
            make_dp("dp1", 1.0, 1.0, n_tasks=6),
            make_dp("dp2", 2.0, 0.5, n_tasks=3),
            make_dp("dp3", 3.0, 1.0, n_tasks=4),
        )
        offset = travel.time(w1, dc)
        assert offset == pytest.approx(1.0)
        times = arrival_times(dc, seq, travel, start_offset=offset)
        route = Route(seq, tuple(times))
        assert route.completion_time == pytest.approx(4.65, abs=0.01)
        assert worker_payoff(route) == pytest.approx(2.80, abs=0.01)


class TestAveragePayoff:
    def test_mean(self):
        assert average_payoff([1.0, 2.0, 3.0]) == pytest.approx(2.0)

    def test_empty(self):
        assert average_payoff([]) == 0.0

    def test_accepts_generator(self):
        assert average_payoff(x for x in (2.0, 4.0)) == pytest.approx(3.0)


class TestPayoffDifference:
    def test_equation2_by_hand(self):
        # Pairs of (1,2): |1-2| + |2-1| = 2, over 2*1 ordered pairs -> 1.0.
        assert payoff_difference([1.0, 2.0]) == pytest.approx(1.0)

    def test_three_workers_by_hand(self):
        # |1-2|+|1-4|+|2-4| = 6 unordered; doubled = 12; /(3*2) = 2.0.
        assert payoff_difference([1.0, 2.0, 4.0]) == pytest.approx(2.0)

    def test_equal_payoffs_zero(self):
        assert payoff_difference([3.0] * 7) == 0.0

    @pytest.mark.parametrize("values", [[], [5.0]])
    def test_degenerate_populations(self, values):
        assert payoff_difference(values) == 0.0

    @pytest.mark.parametrize("seed", range(8))
    def test_fast_matches_naive(self, seed):
        rng = np.random.default_rng(seed)
        values = rng.uniform(0, 10, size=int(rng.integers(2, 40))).tolist()
        assert payoff_difference(values) == pytest.approx(
            payoff_difference_naive(values)
        )

    def test_shift_invariance(self):
        values = [1.0, 4.0, 9.0]
        shifted = [v + 100.0 for v in values]
        assert payoff_difference(values) == pytest.approx(payoff_difference(shifted))

    def test_scale_equivariance(self):
        values = [1.0, 4.0, 9.0]
        assert payoff_difference([3 * v for v in values]) == pytest.approx(
            3 * payoff_difference(values)
        )

    def test_order_invariance(self):
        values = [5.0, 1.0, 3.0, 2.0]
        assert payoff_difference(values) == pytest.approx(
            payoff_difference(sorted(values))
        )


class TestPayoffRange:
    def test_range(self):
        assert payoff_range([1.0, 9.0, 4.0]) == pytest.approx(8.0)

    def test_empty(self):
        assert payoff_range([]) == 0.0
