"""Tests for repro.core.assignment (Definition 8)."""

import pytest

from repro.core.assignment import Assignment, WorkerAssignment
from repro.core.exceptions import InvalidAssignmentError
from repro.core.routing import Route

from tests.conftest import make_dp, make_worker


def _route(*dps, start=1.0, gap=1.0):
    times = tuple(start + i * gap for i in range(len(dps)))
    return Route(tuple(dps), times)


class TestWorkerAssignment:
    def test_null_pair(self):
        pair = WorkerAssignment(make_worker("w", 0, 0))
        assert pair.payoff == 0.0
        assert pair.delivery_point_ids == ()
        assert pair.task_count == 0

    def test_pair_metrics(self):
        route = _route(make_dp("a", 1, 0, n_tasks=2), make_dp("b", 2, 0, n_tasks=1))
        pair = WorkerAssignment(make_worker("w", 0, 0), route)
        assert pair.delivery_point_ids == ("a", "b")
        assert pair.task_count == 3
        assert pair.payoff == pytest.approx(3.0 / 2.0)


class TestAssignmentValidation:
    def test_disjointness_enforced(self):
        dp = make_dp("shared", 1, 0)
        pairs = [
            WorkerAssignment(make_worker("w1", 0, 0), _route(dp)),
            WorkerAssignment(make_worker("w2", 0, 0), _route(dp)),
        ]
        with pytest.raises(InvalidAssignmentError, match="assigned to both"):
            Assignment(pairs)

    def test_duplicate_worker_rejected(self):
        pairs = [
            WorkerAssignment(make_worker("w1", 0, 0)),
            WorkerAssignment(make_worker("w1", 5, 5)),
        ]
        with pytest.raises(InvalidAssignmentError, match="appears twice"):
            Assignment(pairs)

    def test_maxdp_enforced(self):
        dps = [make_dp(f"p{i}", i + 1.0, 0) for i in range(3)]
        pair = WorkerAssignment(make_worker("w1", 0, 0, max_dp=2), _route(*dps))
        with pytest.raises(InvalidAssignmentError, match="at most 2"):
            Assignment([pair])

    def test_deadline_enforced(self):
        late = make_dp("late", 1, 0, expiry=0.5)
        pair = WorkerAssignment(make_worker("w1", 0, 0), _route(late, start=1.0))
        with pytest.raises(InvalidAssignmentError, match="after"):
            Assignment([pair])

    def test_validate_false_skips_checks(self):
        dp = make_dp("shared", 1, 0)
        pairs = [
            WorkerAssignment(make_worker("w1", 0, 0), _route(dp)),
            WorkerAssignment(make_worker("w2", 0, 0), _route(dp)),
        ]
        assignment = Assignment(pairs, validate=False)
        assert len(assignment) == 2


class TestAssignmentMetrics:
    def _assignment(self):
        r1 = _route(make_dp("a", 1, 0, n_tasks=2))  # payoff 2/1 = 2
        r2 = _route(make_dp("b", 2, 0, n_tasks=4), start=2.0)  # payoff 4/2 = 2? no: 4/2=2
        pairs = [
            WorkerAssignment(make_worker("w1", 0, 0), r1),
            WorkerAssignment(make_worker("w2", 0, 0), r2),
            WorkerAssignment(make_worker("w3", 0, 0)),  # null
        ]
        return Assignment(pairs)

    def test_payoffs_in_order(self):
        assignment = self._assignment()
        assert assignment.payoffs == pytest.approx([2.0, 2.0, 0.0])

    def test_aggregate_metrics(self):
        assignment = self._assignment()
        assert assignment.average_payoff == pytest.approx(4.0 / 3.0)
        assert assignment.total_payoff == pytest.approx(4.0)
        assert assignment.busy_worker_count == 2
        assert assignment.assigned_task_count == 6

    def test_payoff_difference(self):
        # payoffs (2, 2, 0): unordered diffs 0+2+2=4, doubled 8, /6.
        assert self._assignment().payoff_difference == pytest.approx(8.0 / 6.0)

    def test_pair_lookup_and_mapping(self):
        assignment = self._assignment()
        assert assignment.pair_for("w2").delivery_point_ids == ("b",)
        with pytest.raises(KeyError):
            assignment.pair_for("ghost")
        assert assignment.as_mapping() == {"w1": ("a",), "w2": ("b",), "w3": ()}

    def test_describe_and_repr(self):
        text = repr(self._assignment())
        assert "P_dif" in text and "busy=2/3" in text

    def test_iteration(self):
        assert [p.worker.worker_id for p in self._assignment()] == ["w1", "w2", "w3"]
