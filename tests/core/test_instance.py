"""Tests for repro.core.instance."""

import pytest

from repro.core.entities import DistributionCenter, Worker
from repro.core.exceptions import InvalidInstanceError
from repro.core.instance import ProblemInstance, SubProblem
from repro.geo.point import Point
from repro.geo.travel import TravelModel

from tests.conftest import make_center, make_dp, make_worker


def _two_center_instance():
    dc0 = make_center([make_dp("a", 1, 0), make_dp("b", 2, 0)], "dc0", 0.0, 0.0)
    dc1 = make_center([make_dp("c", 11, 0)], "dc1", 10.0, 0.0)
    workers = (
        make_worker("w0", 0.5, 0.0, center_id="dc0"),
        make_worker("w1", 10.5, 0.0, center_id="dc1"),
        make_worker("w_free", 9.0, 0.0, center_id=None),
    )
    return ProblemInstance((dc0, dc1), workers)


class TestValidation:
    def test_counts(self):
        inst = _two_center_instance()
        assert inst.task_count == 3
        assert inst.delivery_point_count == 3

    def test_no_centers_rejected(self):
        with pytest.raises(InvalidInstanceError, match="at least one"):
            ProblemInstance((), ())

    def test_duplicate_center_ids(self):
        c = make_center([], "dc0")
        with pytest.raises(InvalidInstanceError, match="duplicate distribution center"):
            ProblemInstance((c, c), ())

    def test_dp_in_two_centers(self):
        dc0 = make_center([make_dp("shared", 0, 0)], "dc0")
        dc1 = DistributionCenter("dc1", Point(5, 5), (make_dp("shared", 1, 1),))
        with pytest.raises(InvalidInstanceError, match="appears in centers"):
            ProblemInstance((dc0, dc1), ())

    def test_duplicate_worker_ids(self):
        dc = make_center([], "dc0")
        w = make_worker("w0", 0, 0)
        with pytest.raises(InvalidInstanceError, match="duplicate worker"):
            ProblemInstance((dc,), (w, w))

    def test_unknown_center_reference(self):
        dc = make_center([], "dc0")
        w = make_worker("w0", 0, 0, center_id="ghost")
        with pytest.raises(InvalidInstanceError, match="unknown center"):
            ProblemInstance((dc,), (w,))

    def test_center_lookup(self):
        inst = _two_center_instance()
        assert inst.center("dc1").center_id == "dc1"
        with pytest.raises(KeyError):
            inst.center("nope")


class TestSubproblems:
    def test_partition_by_center(self):
        subs = {s.center.center_id: s for s in _two_center_instance().subproblems()}
        assert set(subs) == {"dc0", "dc1"}
        assert [w.worker_id for w in subs["dc0"].workers] == ["w0"]

    def test_free_worker_attached_to_nearest(self):
        subs = {s.center.center_id: s for s in _two_center_instance().subproblems()}
        ids = [w.worker_id for w in subs["dc1"].workers]
        assert "w_free" in ids
        attached = next(w for w in subs["dc1"].workers if w.worker_id == "w_free")
        assert attached.center_id == "dc1"

    def test_subproblem_lookup(self):
        inst = _two_center_instance()
        assert inst.subproblem("dc0").center.center_id == "dc0"
        with pytest.raises(KeyError):
            inst.subproblem("nope")

    def test_travel_model_shared(self):
        travel = TravelModel(speed_kmh=3.0)
        dc = make_center([], "dc0")
        inst = ProblemInstance((dc,), (), travel)
        assert inst.subproblems()[0].travel is travel

    def test_wrong_center_worker_rejected(self):
        dc = make_center([], "dc0")
        with pytest.raises(InvalidInstanceError, match="belongs to center"):
            SubProblem(dc, (make_worker("w0", 0, 0, center_id="other"),))

    def test_online_workers_filter(self):
        dc = make_center([], "dc0")
        on = make_worker("w_on", 0, 0)
        off = Worker("w_off", Point(0, 0), 3, "dc0", online=False)
        sub = SubProblem(dc, (on, off))
        assert [w.worker_id for w in sub.online_workers] == ["w_on"]

    def test_describe_mentions_sizes(self):
        inst = _two_center_instance()
        assert "|W|=3" in inst.describe()
        assert "|DC|=2" in inst.describe()
        sub = inst.subproblem("dc0")
        assert "dc0" in sub.describe()
