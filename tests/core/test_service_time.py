"""Tests for the service-time extension (non-zero processing time).

The paper assumes "the processing time of a task is zero"; the library
generalises this with ``DeliveryPoint.service_hours``.  Deadlines still
bind the *arrival* at a point; service delays the departure to the next.
"""

import pytest

from repro.core.entities import DeliveryPoint
from repro.core.instance import SubProblem
from repro.core.routing import arrival_times, best_route, brute_force_best_route
from repro.geo.point import Point
from repro.vdps.catalog import build_catalog
from repro.vdps.generator import generate_cvdps, generate_cvdps_reference

from tests.conftest import make_center, make_tasks, make_worker, unit_speed_travel

ORIGIN = Point(0.0, 0.0)


def make_service_dp(dp_id, x, y, service, n_tasks=1, expiry=10.0):
    return DeliveryPoint(
        dp_id, Point(x, y), make_tasks(dp_id, n_tasks, expiry), service_hours=service
    )


@pytest.fixture
def travel():
    return unit_speed_travel()


class TestEntityValidation:
    def test_negative_service_rejected(self):
        with pytest.raises(ValueError, match="service_hours"):
            make_service_dp("a", 1, 0, service=-0.1)

    def test_service_preserved_by_with_tasks(self):
        dp = make_service_dp("a", 1, 0, service=0.25)
        assert dp.with_tasks(make_tasks("a", 2)).service_hours == 0.25

    def test_service_part_of_equality(self):
        a = make_service_dp("a", 1, 0, service=0.0)
        b = make_service_dp("a", 1, 0, service=0.5)
        assert a != b


class TestArrivalTimes:
    def test_service_delays_departure_not_arrival(self, travel):
        seq = [
            make_service_dp("a", 1, 0, service=0.5),
            make_service_dp("b", 2, 0, service=0.0),
        ]
        times = arrival_times(ORIGIN, seq, travel)
        assert times[0] == pytest.approx(1.0)  # arrival unaffected by own service
        assert times[1] == pytest.approx(2.5)  # 1.0 + 0.5 service + 1.0 travel

    def test_zero_service_matches_paper_model(self, travel):
        seq = [make_service_dp("a", 1, 0, service=0.0), make_service_dp("b", 2, 0, 0.0)]
        assert arrival_times(ORIGIN, seq, travel) == pytest.approx([1.0, 2.0])


class TestRouting:
    def test_best_route_accounts_for_service(self, travel):
        # b's deadline is met only if visited before a's long service.
        points = [
            make_service_dp("a", 1, 0, service=5.0, expiry=100.0),
            make_service_dp("b", 2, 0, service=0.0, expiry=2.5),
        ]
        route = best_route(ORIGIN, points, travel)
        assert route is not None
        assert [dp.dp_id for dp in route.sequence] == ["b", "a"]

    def test_infeasible_due_to_service(self, travel):
        points = [
            make_service_dp("a", 1, 0, service=5.0, expiry=100.0),
            make_service_dp("b", 1.5, 0, service=0.0, expiry=2.0),
        ]
        # Visiting b first: b at 1.5 OK, a at 1.5+0+0.5? a expiry large: OK.
        route = best_route(ORIGIN, points, travel)
        assert route is not None
        # Now make b unreachable either way.
        points[1] = make_service_dp("b2", 50, 0, service=0.0, expiry=2.0)
        assert best_route(ORIGIN, points, travel) is None

    @pytest.mark.parametrize("seed", range(4))
    def test_matches_brute_force_with_services(self, travel, seed):
        import numpy as np

        rng = np.random.default_rng(seed)
        points = [
            make_service_dp(
                f"p{i}",
                float(rng.uniform(0, 3)),
                float(rng.uniform(0, 3)),
                service=float(rng.uniform(0, 1)),
                expiry=float(rng.uniform(3, 9)),
            )
            for i in range(int(rng.integers(2, 5)))
        ]
        fast = best_route(ORIGIN, points, travel)
        slow = brute_force_best_route(ORIGIN, points, travel)
        if slow is None:
            assert fast is None
        else:
            assert fast.completion_time == pytest.approx(slow.completion_time)


class TestVdpsWithServices:
    def test_generator_matches_reference(self, travel):
        center = make_center(
            [
                make_service_dp("a", 1, 0, service=0.4, expiry=4.0),
                make_service_dp("b", 2, 0, service=0.2, expiry=4.0),
                make_service_dp("c", 1, 1, service=0.0, expiry=4.0),
            ]
        )
        fast = generate_cvdps(center, travel)
        slow = generate_cvdps_reference(center, travel)
        assert [e.point_ids for e in fast] == [e.point_ids for e in slow]
        for f, s in zip(fast, slow):
            assert f.route.completion_time == pytest.approx(s.route.completion_time)

    def test_service_shrinks_feasible_space(self, travel):
        def build(service):
            return make_center(
                [
                    make_service_dp("a", 1, 0, service=service, expiry=2.6),
                    make_service_dp("b", 2, 0, service=service, expiry=2.6),
                ]
            )

        without = {e.point_ids for e in generate_cvdps(build(0.0), travel)}
        with_service = {e.point_ids for e in generate_cvdps(build(1.0), travel)}
        assert frozenset({"a", "b"}) in without
        assert frozenset({"a", "b"}) not in with_service

    def test_catalog_with_slow_worker_and_service(self, travel):
        # Worker at half speed: travel doubles but service does not.
        from repro.core.entities import Worker

        center = make_center(
            [make_service_dp("a", 1, 0, service=0.5, expiry=20.0),
             make_service_dp("b", 2, 0, service=0.0, expiry=20.0)]
        )
        slow = Worker("slow", Point(0, 0), 2, "dc0", speed_kmh=0.5)
        sub = SubProblem(center, (slow,), travel)
        catalog = build_catalog(sub)
        pair = next(
            s for s in catalog.strategies("slow") if s.point_ids == {"a", "b"}
        )
        # Travel legs (1 + 1 km) at 0.5 km/h = 4h, plus 0.5h service at a.
        assert pair.route.completion_time == pytest.approx(4.5)
