"""Quality gate: every public module, class, and function has a docstring."""

import importlib
import inspect
import pkgutil

import pytest

import repro


def _public_modules():
    names = ["repro"]
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if "._" not in info.name:
            names.append(info.name)
    return names


MODULES = _public_modules()


@pytest.mark.parametrize("module_name", MODULES)
def test_module_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__, f"{module_name} lacks a module docstring"


@pytest.mark.parametrize("module_name", MODULES)
def test_public_members_documented(module_name):
    module = importlib.import_module(module_name)
    undocumented = []
    for name, member in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(member) or inspect.isfunction(member)):
            continue
        if getattr(member, "__module__", None) != module_name:
            continue  # re-exported from elsewhere; checked at its home
        if not inspect.getdoc(member):
            undocumented.append(name)
        elif inspect.isclass(member):
            for meth_name, meth in vars(member).items():
                if meth_name.startswith("_") or not inspect.isfunction(meth):
                    continue
                if not inspect.getdoc(meth):
                    undocumented.append(f"{name}.{meth_name}")
    assert not undocumented, (
        f"{module_name} has undocumented public members: {undocumented}"
    )
