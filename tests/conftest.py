"""Shared fixtures and builders for the test suite."""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import pytest
from hypothesis import settings

# A reduced-budget profile for CI's fast jobs (catalog-delta-smoke selects
# it with --hypothesis-profile=ci) and a local default without Hypothesis's
# 200 ms deadline (the stateful catalog-churn machine rebuilds a catalog in
# every invariant check, which can trip it on loaded machines).  Tests with
# explicit @settings keep their own values; --hypothesis-profile overrides
# the load_profile call below.
settings.register_profile(
    "ci", max_examples=15, stateful_step_count=15, deadline=None
)
settings.register_profile(
    "repro-local", max_examples=30, stateful_step_count=20, deadline=None
)
settings.load_profile("repro-local")

from repro import (
    DeliveryPoint,
    DistributionCenter,
    GMissionConfig,
    Point,
    ProblemInstance,
    SpatialTask,
    TravelModel,
    Worker,
    generate_gmission_like,
)

_TASK_COUNTER = [0]


def make_tasks(
    dp_id: str, count: int, expiry: float = 10.0, reward: float = 1.0
) -> Tuple[SpatialTask, ...]:
    """``count`` identical tasks for ``dp_id`` with unique ids."""
    tasks = []
    for _ in range(count):
        _TASK_COUNTER[0] += 1
        tasks.append(
            SpatialTask(
                task_id=f"t{_TASK_COUNTER[0]}",
                delivery_point_id=dp_id,
                expiry=expiry,
                reward=reward,
            )
        )
    return tuple(tasks)


def make_dp(
    dp_id: str,
    x: float,
    y: float,
    n_tasks: int = 1,
    expiry: float = 10.0,
    reward: float = 1.0,
) -> DeliveryPoint:
    """A delivery point at ``(x, y)`` with ``n_tasks`` uniform tasks."""
    return DeliveryPoint(
        dp_id=dp_id,
        location=Point(x, y),
        tasks=make_tasks(dp_id, n_tasks, expiry, reward),
    )


def make_center(
    dps: Sequence[DeliveryPoint],
    center_id: str = "dc0",
    x: float = 0.0,
    y: float = 0.0,
) -> DistributionCenter:
    return DistributionCenter(center_id, Point(x, y), tuple(dps))


def make_worker(
    worker_id: str,
    x: float,
    y: float,
    max_dp: int = 3,
    center_id: Optional[str] = "dc0",
) -> Worker:
    return Worker(worker_id, Point(x, y), max_dp, center_id)


def unit_speed_travel() -> TravelModel:
    """Speed 1 km/h: travel time equals distance, easing hand computation."""
    return TravelModel(speed_kmh=1.0)


@pytest.fixture
def travel() -> TravelModel:
    return unit_speed_travel()


@pytest.fixture
def line_center() -> DistributionCenter:
    """Three delivery points on the x-axis at 1, 2, 3 km from the center."""
    return make_center(
        [
            make_dp("a", 1.0, 0.0, n_tasks=2, expiry=10.0),
            make_dp("b", 2.0, 0.0, n_tasks=1, expiry=10.0),
            make_dp("c", 3.0, 0.0, n_tasks=3, expiry=10.0),
        ]
    )


@pytest.fixture
def small_gm_instance() -> ProblemInstance:
    """A small but non-trivial GM surrogate instance shared across tests."""
    config = GMissionConfig(n_tasks=60, n_workers=8, n_delivery_points=15)
    return generate_gmission_like(config, seed=42)
