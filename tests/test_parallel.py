"""Tests for repro.parallel (per-center parallel solving)."""

import pytest

from repro.baselines.gta import GTASolver
from repro.datasets.synthetic import SynConfig, generate_synthetic
from repro.experiments.runner import AlgorithmSpec, run_algorithms
from repro.games.fgt import FGTSolver
from repro.parallel import InstanceSolution, solve_instance
from repro.vdps.catalog import build_catalog


@pytest.fixture(scope="module")
def instance():
    cfg = SynConfig(
        n_centers=3, n_workers=18, n_delivery_points=36, n_tasks=240, space_km=12.0
    )
    return generate_synthetic(cfg, seed=4)


class TestSolveInstance:
    def test_serial_covers_all_centers(self, instance):
        solution = solve_instance(instance, GTASolver(), epsilon=2.0, seed=0)
        assert set(solution.assignments) == {c.center_id for c in instance.centers}
        assert len(solution.payoffs) == len(instance.workers)

    def test_parallel_equals_serial(self, instance):
        solver = FGTSolver(epsilon=2.0)
        serial = solve_instance(instance, solver, epsilon=2.0, seed=7, n_jobs=1)
        parallel = solve_instance(instance, solver, epsilon=2.0, seed=7, n_jobs=2)
        assert serial.payoffs == parallel.payoffs
        for center_id in serial.assignments:
            assert (
                serial.assignments[center_id].as_mapping()
                == parallel.assignments[center_id].as_mapping()
            )

    def test_global_metrics(self, instance):
        solution = solve_instance(instance, GTASolver(), epsilon=2.0, seed=0)
        assert solution.payoff_difference >= 0
        assert solution.average_payoff >= 0
        assert "centers=3" in solution.describe()

    def test_seed_changes_game_outcomes(self, instance):
        solver = FGTSolver(epsilon=2.0)
        a = solve_instance(instance, solver, epsilon=2.0, seed=1)
        b = solve_instance(instance, solver, epsilon=2.0, seed=2)
        # Different root seeds give different random initialisations; the
        # equilibria typically differ on at least one center.
        assert a.payoffs != b.payoffs or a.describe() == b.describe()

    def test_invalid_n_jobs(self, instance):
        with pytest.raises(ValueError, match="n_jobs"):
            solve_instance(instance, GTASolver(), n_jobs=0)

    def test_busy_worker_count(self, instance):
        solution = solve_instance(instance, GTASolver(), epsilon=2.0, seed=0)
        busy = sum(
            a.busy_worker_count for a in solution.assignments.values()
        )
        assert solution.busy_worker_count == busy


class TestSeedStreams:
    def test_named_stream_matches_run_algorithms(self, instance):
        # seed_stream="FGT" derives the exact per-center streams that
        # run_algorithms gives its "FGT" arm — the service's fidelity hook.
        solution = solve_instance(
            instance,
            FGTSolver(epsilon=2.0),
            epsilon=2.0,
            seed=9,
            seed_stream="FGT",
        )
        record = run_algorithms(
            instance,
            [AlgorithmSpec("FGT", lambda eps: FGTSolver(epsilon=eps))],
            epsilon=2.0,
            seed=9,
        )[0]
        assert sorted(solution.payoffs) == sorted(record.payoffs)
        assert solution.payoff_difference == record.payoff_difference

    def test_default_stream_is_stable(self, instance):
        # The historical "center:*" streams stay the default.
        solver = FGTSolver(epsilon=2.0)
        explicit = solve_instance(
            instance, solver, epsilon=2.0, seed=4, seed_stream="center"
        )
        implicit = solve_instance(instance, solver, epsilon=2.0, seed=4)
        assert explicit.payoffs == implicit.payoffs


class TestPrebuiltCatalogs:
    def test_prebuilt_catalogs_equal_cold_builds(self, instance):
        catalogs = {
            sub.center.center_id: build_catalog(sub, epsilon=2.0)
            for sub in instance.subproblems()
        }
        warm = solve_instance(
            instance, GTASolver(), epsilon=2.0, seed=0, catalogs=catalogs
        )
        cold = solve_instance(instance, GTASolver(), epsilon=2.0, seed=0)
        assert warm.payoffs == cold.payoffs
        for center_id in cold.assignments:
            assert (
                warm.assignments[center_id].as_mapping()
                == cold.assignments[center_id].as_mapping()
            )

    def test_partial_catalog_mapping_allowed(self, instance):
        first = instance.subproblems()[0]
        catalogs = {first.center.center_id: build_catalog(first, epsilon=2.0)}
        partial = solve_instance(
            instance, GTASolver(), epsilon=2.0, seed=0, catalogs=catalogs
        )
        cold = solve_instance(instance, GTASolver(), epsilon=2.0, seed=0)
        assert partial.payoffs == cold.payoffs
