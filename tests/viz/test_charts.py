"""Tests for repro.viz.charts."""

import xml.etree.ElementTree as ET

import pytest

from repro.core.instance import SubProblem
from repro.experiments.runner import RunRecord
from repro.experiments.sweep import SweepResult
from repro.viz.charts import LineChart, nice_ticks, render_instance_map, render_sweep_chart

from tests.conftest import make_center, make_dp, make_worker, unit_speed_travel

NS = "{http://www.w3.org/2000/svg}"


class TestNiceTicks:
    def test_simple_range(self):
        ticks = nice_ticks(0.0, 10.0)
        assert ticks[0] <= 0.0 + 1e-9
        assert ticks[-1] >= 10.0 - 1e-9
        steps = {round(b - a, 9) for a, b in zip(ticks, ticks[1:])}
        assert len(steps) == 1  # uniform spacing

    def test_degenerate_range(self):
        assert nice_ticks(3.0, 3.0) == [3.0]

    def test_reversed_range(self):
        assert nice_ticks(10.0, 0.0) == nice_ticks(0.0, 10.0)

    @pytest.mark.parametrize("lo,hi", [(0.13, 0.97), (5, 123456), (-4, 7)])
    def test_tick_count_bounded(self, lo, hi):
        ticks = nice_ticks(lo, hi, target=5)
        assert 2 <= len(ticks) <= 6

    def test_target_validation(self):
        with pytest.raises(ValueError):
            nice_ticks(0, 1, target=1)


class TestLineChart:
    def _chart(self):
        chart = LineChart("demo", x_values=[1, 2, 3], x_label="k", y_label="v")
        chart.add("A", [1.0, 2.0, 3.0])
        chart.add("B", [3.0, 2.5, 2.0])
        return chart

    def test_renders_valid_svg(self):
        root = ET.fromstring(self._chart().render())
        polylines = root.findall(f"{NS}polyline")
        assert len(polylines) >= 2  # one per series (+ legend uses lines)
        texts = [t.text for t in root.findall(f"{NS}text")]
        assert "demo" in texts
        assert "A" in texts and "B" in texts

    def test_mismatched_series_rejected(self):
        chart = LineChart("demo", x_values=[1, 2, 3])
        with pytest.raises(ValueError, match="points"):
            chart.add("A", [1.0])

    def test_empty_chart_rejected(self):
        with pytest.raises(ValueError, match="no series"):
            LineChart("demo", x_values=[1]).render()

    def test_log_scale_rejects_non_positive(self):
        chart = LineChart("demo", x_values=[1, 2], log_y=True)
        with pytest.raises(ValueError, match="non-positive"):
            chart.add("A", [1.0, 0.0])

    def test_log_scale_renders(self):
        chart = LineChart("demo", x_values=[1, 2, 3], log_y=True)
        chart.add("A", [0.01, 1.0, 100.0])
        ET.fromstring(chart.render())

    def test_constant_series_renders(self):
        chart = LineChart("demo", x_values=[1, 2])
        chart.add("A", [5.0, 5.0])
        ET.fromstring(chart.render())

    def test_save(self, tmp_path):
        self._chart().save(tmp_path / "chart.svg")
        assert (tmp_path / "chart.svg").exists()


class TestRenderSweepChart:
    def _sweep(self):
        result = SweepResult(name="Fig X", parameter="k", values=[1, 2])
        result.add(1, [RunRecord("GTA", 2.0, 5.0, 0.1), RunRecord("IEGT", 1.0, 4.0, 0.2)])
        result.add(2, [RunRecord("GTA", 3.0, 6.0, 0.1), RunRecord("IEGT", 1.5, 5.0, 0.3)])
        return result

    def test_renders_all_algorithms(self):
        svg = render_sweep_chart(self._sweep(), "payoff_difference")
        root = ET.fromstring(svg)
        texts = [t.text for t in root.findall(f"{NS}text")]
        assert "GTA" in texts and "IEGT" in texts

    def test_algorithm_subset(self):
        svg = render_sweep_chart(self._sweep(), "cpu_seconds", algorithms=["IEGT"])
        root = ET.fromstring(svg)
        texts = [t.text for t in root.findall(f"{NS}text")]
        assert "IEGT" in texts and "GTA" not in texts


class TestPayoffDistribution:
    def _assignment(self):
        from repro.core.assignment import Assignment, WorkerAssignment
        from repro.core.routing import Route
        from tests.conftest import make_dp as _dp, make_worker as _w

        r1 = Route((_dp("a", 1, 0, n_tasks=4),), (1.0,))
        r2 = Route((_dp("b", 2, 0, n_tasks=1),), (2.0,))
        return Assignment(
            [
                WorkerAssignment(_w("rich", 0, 0), r1),
                WorkerAssignment(_w("poor", 0, 0), r2),
                WorkerAssignment(_w("idle", 0, 0)),
            ]
        )

    def test_renders_one_bar_per_worker(self):
        from repro.viz.charts import render_payoff_distribution

        svg = render_payoff_distribution(self._assignment())
        root = ET.fromstring(svg)
        rects = root.findall(f"{NS}rect")
        # background + frame + 3 bars
        assert len(rects) == 5

    def test_mean_line_present(self):
        from repro.viz.charts import render_payoff_distribution

        svg = render_payoff_distribution(self._assignment(), title="demo")
        root = ET.fromstring(svg)
        texts = [t.text for t in root.findall(f"{NS}text")]
        assert "demo" in texts
        assert any(t and t.startswith("mean ") for t in texts)

    def test_empty_rejected(self):
        from repro.core.assignment import Assignment
        from repro.viz.charts import render_payoff_distribution

        with pytest.raises(ValueError, match="no workers"):
            render_payoff_distribution(Assignment([]))


class TestInstanceMap:
    def test_renders_all_entities(self):
        center = make_center(
            [make_dp("a", 1, 0, n_tasks=2), make_dp("b", 2, 1, n_tasks=5)]
        )
        sub = SubProblem(
            center,
            (make_worker("w1", 0, 1), make_worker("w2", 1, 2)),
            unit_speed_travel(),
        )
        root = ET.fromstring(render_instance_map(sub))
        circles = root.findall(f"{NS}circle")
        assert len(circles) == 2  # delivery points
        # Radius scales with task count: b (5 tasks) larger than a (2).
        radii = sorted(float(c.get("r")) for c in circles)
        assert radii[0] < radii[1]
        # Two workers -> four cross strokes + frame lines exist.
        assert len(root.findall(f"{NS}line")) >= 4
