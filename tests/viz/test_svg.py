"""Tests for repro.viz.svg (SVG primitives)."""

import xml.etree.ElementTree as ET

import pytest

from repro.viz.svg import SvgDocument, _fmt

NS = "{http://www.w3.org/2000/svg}"


def _parse(doc: SvgDocument) -> ET.Element:
    return ET.fromstring(doc.to_string())


class TestFormatting:
    @pytest.mark.parametrize(
        "value,expected",
        [(1.0, "1"), (1.5, "1.5"), (1.25, "1.25"), (1.20001, "1.2"), (0.0, "0")],
    )
    def test_fmt(self, value, expected):
        assert _fmt(value) == expected


class TestDocument:
    def test_invalid_size(self):
        with pytest.raises(ValueError):
            SvgDocument(0, 100)

    def test_well_formed_xml(self):
        doc = SvgDocument(100, 80)
        doc.line(0, 0, 10, 10)
        doc.circle(5, 5, 2)
        doc.rect(1, 1, 5, 5)
        doc.text(2, 2, "hello <world> & \"friends\"")
        doc.polyline([(0, 0), (1, 1), (2, 0)])
        root = _parse(doc)
        assert root.tag == f"{NS}svg"
        assert root.get("width") == "100"

    def test_background_rect(self):
        root = _parse(SvgDocument(50, 50, background="#fafafa"))
        rects = root.findall(f"{NS}rect")
        assert rects and rects[0].get("fill") == "#fafafa"

    def test_no_background(self):
        doc = SvgDocument(50, 50, background="")
        assert not _parse(doc).findall(f"{NS}rect")

    def test_text_escaping(self):
        doc = SvgDocument(50, 50)
        doc.text(0, 0, "a < b & c")
        text_el = _parse(doc).find(f"{NS}text")
        assert text_el.text == "a < b & c"

    def test_polyline_needs_two_points(self):
        doc = SvgDocument(50, 50)
        with pytest.raises(ValueError):
            doc.polyline([(0, 0)])

    def test_dash_and_rotate_attrs(self):
        doc = SvgDocument(50, 50)
        doc.line(0, 0, 1, 1, dash="2,2")
        doc.text(5, 5, "rotated", rotate=-90)
        root = _parse(doc)
        assert root.find(f"{NS}line").get("stroke-dasharray") == "2,2"
        assert "rotate(-90" in root.find(f"{NS}text").get("transform")

    def test_save(self, tmp_path):
        doc = SvgDocument(10, 10)
        doc.save(tmp_path / "out.svg")
        assert (tmp_path / "out.svg").read_text().startswith("<svg")
