"""Differential tests: vectorized kernels vs the scalar reference."""
