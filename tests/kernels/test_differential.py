"""Differential suite: the vectorized kernels vs the scalar reference.

Bit-identity — not approximate equality — is the kernels' contract
(``docs/performance.md``): the layered-DP state tables must match value
for value (arrival times compared via ``float.hex``, so ``-0.0`` or a
1-ulp drift fails), the ``CVdpsEntry`` lists and catalogs must be equal
via ``==`` and :func:`catalog_diff`, the Held–Karp routes must equal the
scalar DP *and* brute force, and :class:`DeltaCatalog` surgery over a
vectorized-built base table must stay identical to scalar rebuilds under
churn.  The sweep deliberately covers the axes where the kernels take
different code paths: epsilon pruning on/off, ``service_hours > 0``
(exercises the ``(t + service) + travel`` association), ``max_size``
caps, and degenerate empty/singleton centers.
"""

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro.core.entities import (
    DeliveryPoint,
    DistributionCenter,
    SpatialTask,
    Worker,
)
from repro.core.instance import SubProblem
from repro.core.routing import best_route, brute_force_best_route
from repro.datasets.gmission import GMissionConfig, generate_gmission_like
from repro.geo.point import Point
from repro.geo.travel import TravelModel
from repro.kernels import (
    KERNEL_ENV_VAR,
    default_kernel,
    numba_available,
    resolve_kernel,
    set_default_kernel,
)
from repro.obs.metrics import METRICS
from repro.obs.tracer import NULL_TRACER
from repro.vdps.catalog import build_catalog
from repro.vdps.delta import DeltaCatalog, catalog_diff
from repro.vdps.generator import (
    DPStats,
    compute_states,
    generate_cvdps,
    neighbor_id_map,
)

SEEDS = [0, 1, 7, 42]
EPSILONS = [0.8, None]


def _gm_sub(seed):
    instance = generate_gmission_like(
        GMissionConfig(n_tasks=70, n_workers=9, n_delivery_points=16),
        seed=seed,
    )
    return next(iter(instance.subproblems()))


def _state_tables(sub, epsilon, cap):
    """The DP table and counters under each tier, same inputs."""
    points = sub.center.delivery_points
    points_by_id = {dp.dp_id: dp for dp in points}
    neighbors = neighbor_id_map(points, epsilon)
    tables, stats = {}, {}
    for tier in ("scalar", "vectorized"):
        dp_stats = DPStats()
        tables[tier] = compute_states(
            points_by_id,
            neighbors,
            sub.travel,
            sub.center.location,
            cap,
            dp_stats,
            NULL_TRACER,
            sub.center.center_id,
            kernel=tier,
        )
        stats[tier] = (
            dp_stats.states_expanded,
            dp_stats.candidates_tried,
            dp_stats.deadline_rejections,
        )
    return tables, stats


def _assert_tables_bit_identical(scalar, vectorized):
    assert set(scalar) == set(vectorized)
    for key, (t_s, path_s) in scalar.items():
        t_v, path_v = vectorized[key]
        assert path_s == path_v, key
        # hex equality is bit equality: a 1-ulp drift or -0.0 fails here
        # where plain == would not.
        assert float(t_s).hex() == float(t_v).hex(), key


class TestCvdpsDifferential:
    """Scalar vs vectorized over GM instances and hand-built edge cases."""

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("epsilon", EPSILONS)
    def test_gm_state_tables_and_counters(self, seed, epsilon):
        sub = _gm_sub(seed)
        cap = max(w.max_delivery_points for w in sub.online_workers)
        tables, stats = _state_tables(sub, epsilon, cap)
        _assert_tables_bit_identical(tables["scalar"], tables["vectorized"])
        # The vectorized kernel mirrors the scalar counters exactly, so
        # dashboards read the same numbers whichever tier served a build.
        assert stats["scalar"] == stats["vectorized"]

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("epsilon", EPSILONS)
    def test_gm_entries_and_catalogs(self, seed, epsilon):
        sub = _gm_sub(seed)
        cap = max(w.max_delivery_points for w in sub.online_workers)
        entries_s = generate_cvdps(sub.center, sub.travel, epsilon, cap, kernel="scalar")
        entries_v = generate_cvdps(
            sub.center, sub.travel, epsilon, cap, kernel="vectorized"
        )
        assert entries_s == entries_v
        catalog_s = build_catalog(sub, epsilon=epsilon, kernel="scalar")
        catalog_v = build_catalog(sub, epsilon=epsilon, kernel="vectorized")
        assert not catalog_diff(catalog_s, catalog_v)

    @pytest.mark.parametrize("cap", [1, 2, 3])
    @pytest.mark.parametrize("epsilon", [1.5, None])
    def test_service_hours_center(self, cap, epsilon):
        # service_hours > 0 exercises the kernels' (t + service) + travel
        # association; the GM surrogate always has service_hours == 0.
        sub = _service_hours_sub()
        tables, stats = _state_tables(sub, epsilon, cap)
        _assert_tables_bit_identical(tables["scalar"], tables["vectorized"])
        assert stats["scalar"] == stats["vectorized"]
        entries_s = generate_cvdps(sub.center, sub.travel, epsilon, cap, kernel="scalar")
        entries_v = generate_cvdps(
            sub.center, sub.travel, epsilon, cap, kernel="vectorized"
        )
        assert entries_s == entries_v
        if cap > 1:
            assert any(len(e.point_ids) > 1 for e in entries_v)
        assert not catalog_diff(
            build_catalog(sub, epsilon=epsilon, kernel="scalar"),
            build_catalog(sub, epsilon=epsilon, kernel="vectorized"),
        )

    def test_max_size_cap_sweep(self):
        sub = _gm_sub(0)
        for cap in (1, 2, 3):
            tables, _ = _state_tables(sub, 0.8, cap)
            _assert_tables_bit_identical(tables["scalar"], tables["vectorized"])
            assert all(len(subset) <= cap for subset, _ in tables["vectorized"])

    def test_empty_center(self):
        center = DistributionCenter("dc", Point(0.0, 0.0), ())
        travel = TravelModel(speed_kmh=5.0)
        for tier in ("scalar", "vectorized"):
            assert generate_cvdps(center, travel, 0.8, 3, kernel=tier) == []
        sub = SubProblem(center, (_worker(0),), travel)
        assert not catalog_diff(
            build_catalog(sub, epsilon=0.8, kernel="scalar"),
            build_catalog(sub, epsilon=0.8, kernel="vectorized"),
        )

    def test_singleton_center(self):
        dp = _dp(0, 0.4, 0.3, expiry=4.0, service=0.25)
        center = DistributionCenter("dc", Point(0.0, 0.0), (dp,))
        travel = TravelModel(speed_kmh=5.0)
        entries = {
            tier: generate_cvdps(center, travel, None, 3, kernel=tier)
            for tier in ("scalar", "vectorized")
        }
        assert entries["scalar"] == entries["vectorized"]
        assert len(entries["vectorized"]) == 1


class TestBestRouteDifferential:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("offset", [0.0, 0.1])
    def test_matches_scalar_and_brute_force(self, seed, offset):
        sub = _gm_sub(seed)
        for size in (2, 4, 6):
            pts = sub.center.delivery_points[:size]
            scalar = best_route(
                sub.center.location, pts, sub.travel, offset, kernel="scalar"
            )
            vector = best_route(
                sub.center.location, pts, sub.travel, offset, kernel="vectorized"
            )
            assert scalar == vector
            brute = brute_force_best_route(
                sub.center.location, pts, sub.travel, offset
            )
            assert (brute is None) == (vector is None)
            if brute is not None:
                assert brute.completion_time == vector.completion_time

    def test_service_hours_routes(self):
        sub = _service_hours_sub()
        pts = sub.center.delivery_points[:5]
        scalar = best_route(sub.center.location, pts, sub.travel, 0.0, kernel="scalar")
        vector = best_route(
            sub.center.location, pts, sub.travel, 0.0, kernel="vectorized"
        )
        assert scalar == vector


# -- DeltaCatalog over a vectorized base table -----------------------------

_TRAVEL = TravelModel(speed_kmh=1.0)
_EPSILON = 2.5

coordinate = st.floats(min_value=-3.0, max_value=3.0, allow_nan=False)
expiry = st.floats(min_value=0.2, max_value=12.0, allow_nan=False)


def _dp(i, x, y, expiry=6.0, service=0.0, n_tasks=1):
    tasks = tuple(
        SpatialTask(f"t{i}_{k}", f"dp{i}", expiry + 0.1 * k)
        for k in range(n_tasks)
    )
    return DeliveryPoint(f"dp{i}", Point(x, y), tasks, service)


def _worker(i, cap=3):
    return Worker(f"w{i}", Point(0.1 * i, -0.2), cap, center_id="dc")


def _service_hours_sub():
    points = tuple(
        _dp(i, 0.3 * (i + 1), 0.2 * (i % 3), expiry=3.0 + 0.5 * i,
            service=0.05 * (i + 1), n_tasks=1 + i % 2)
        for i in range(6)
    )
    center = DistributionCenter("dc", Point(0.0, 0.0), points)
    workers = tuple(_worker(i, cap=1 + i % 3) for i in range(4))
    return SubProblem(center, workers, TravelModel(speed_kmh=5.0))


def _churn_sub(points, workers):
    center = DistributionCenter("dc", Point(0.0, 0.0), tuple(points.values()))
    return SubProblem(center, tuple(workers), _TRAVEL)


class TestDeltaOverVectorizedBase:
    """Delta surgery on a kernel-built table ≡ scalar rebuilds, always."""

    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(data=st.data())
    def test_churn_stays_identical_to_scalar_rebuild(self, data):
        points = {
            f"dp{i}": _dp(
                i,
                data.draw(coordinate, label=f"x{i}"),
                data.draw(coordinate, label=f"y{i}"),
                expiry=data.draw(expiry, label=f"e{i}"),
            )
            for i in range(4)
        }
        workers = [_worker(i) for i in range(3)]
        # rebuild_fraction=10 forces the surgery path even when one churn
        # step touches a large share of this tiny center.
        delta = DeltaCatalog(
            _churn_sub(points, workers),
            epsilon=_EPSILON,
            rebuild_fraction=10,
            kernel="vectorized",
        )
        delta.refresh(_churn_sub(points, workers))
        next_task = [100]

        def add_task(dp_id):
            next_task[0] += 1
            task = SpatialTask(
                f"t{next_task[0]}", dp_id, data.draw(expiry, label="new expiry")
            )
            dp = points[dp_id]
            points[dp_id] = dp.with_tasks(dp.tasks + (task,))

        def move_deadline(dp_id):
            dp = points[dp_id]
            if not dp.tasks:
                return
            moved = SpatialTask(
                dp.tasks[0].task_id,
                dp_id,
                data.draw(expiry, label="moved expiry"),
                dp.tasks[0].reward,
            )
            points[dp_id] = dp.with_tasks((moved,) + dp.tasks[1:])

        def drop_task(dp_id):
            dp = points[dp_id]
            points[dp_id] = dp.with_tasks(dp.tasks[1:])

        ops = [add_task, move_deadline, drop_task]
        for step in range(data.draw(st.integers(2, 5), label="steps")):
            op = data.draw(st.sampled_from(ops), label=f"op{step}")
            dp_id = data.draw(
                st.sampled_from(sorted(points)), label=f"dp{step}"
            )
            op(dp_id)
            sub = _churn_sub(points, workers)
            refreshed = delta.refresh(sub)
            rebuilt = build_catalog(sub, epsilon=_EPSILON, kernel="scalar")
            assert not catalog_diff(refreshed, rebuilt)

    def test_worker_churn_and_cross_tier_equality(self):
        points = {f"dp{i}": _dp(i, 0.5 * i, 0.3, expiry=5.0) for i in range(3)}
        workers = [_worker(i) for i in range(2)]
        delta = DeltaCatalog(
            _churn_sub(points, workers),
            epsilon=_EPSILON,
            rebuild_fraction=10,
            kernel="vectorized",
        )
        delta.refresh(_churn_sub(points, workers))
        workers.append(_worker(7, cap=1))
        sub = _churn_sub(points, workers)
        refreshed = delta.refresh(sub)
        for tier in ("scalar", "vectorized"):
            assert not catalog_diff(
                refreshed, build_catalog(sub, epsilon=_EPSILON, kernel=tier)
            )


class TestKernelConfig:
    def test_env_var_selects_tier(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV_VAR, "scalar")
        assert default_kernel() == "scalar"
        assert resolve_kernel() == "scalar"
        monkeypatch.setenv(KERNEL_ENV_VAR, "vectorized")
        assert resolve_kernel() == "vectorized"

    def test_set_default_kernel_overrides_env(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV_VAR, "scalar")
        set_default_kernel("vectorized")
        try:
            assert default_kernel() == "vectorized"
        finally:
            set_default_kernel(None)
        assert default_kernel() == "scalar"

    def test_rejects_unknown_tier(self):
        with pytest.raises(ValueError, match="kernel"):
            resolve_kernel("simd")
        with pytest.raises(ValueError, match="kernel"):
            set_default_kernel("simd")

    def test_numba_request_is_always_safe(self):
        before = METRICS.snapshot()
        tier = resolve_kernel("numba")
        if numba_available():
            assert tier == "numba"
        else:
            # Degrades to the bit-identical vectorized kernels, counted.
            assert tier == "vectorized"
            assert METRICS.delta(before).get("kernel.numba_fallbacks") == 1

    def test_build_counters_name_the_serving_tier(self):
        sub = _gm_sub(0)
        before = METRICS.snapshot()
        build_catalog(sub, epsilon=0.8, kernel="vectorized")
        after_vec = METRICS.delta(before)
        assert after_vec.get("kernel.cvdps_vectorized", 0) >= 1
        assert after_vec.get("kernel.validate_vectorized", 0) >= 1
        before = METRICS.snapshot()
        build_catalog(sub, epsilon=0.8, kernel="scalar")
        after_scalar = METRICS.delta(before)
        assert after_scalar.get("kernel.cvdps_scalar", 0) >= 1
        assert "kernel.cvdps_vectorized" not in after_scalar
