"""Tests for repro.sim.arrivals."""

import numpy as np
import pytest

from repro.sim.arrivals import PoissonTaskArrivals, TaskArrival

from tests.conftest import make_dp


@pytest.fixture
def points():
    return [make_dp("a", 1, 0), make_dp("b", 2, 0), make_dp("c", 3, 0)]


class TestTaskArrival:
    def test_remaining(self):
        arrival = TaskArrival("t", "a", arrival_time=1.0, expiry=2.5)
        assert arrival.remaining(2.0) == pytest.approx(0.5)
        assert arrival.remaining(3.0) == pytest.approx(-0.5)


class TestValidation:
    def test_needs_points(self):
        with pytest.raises(ValueError, match="delivery point"):
            PoissonTaskArrivals([], rate_per_hour=10)

    def test_positive_rate(self, points):
        with pytest.raises(ValueError, match="rate_per_hour"):
            PoissonTaskArrivals(points, rate_per_hour=0)

    def test_patience_bounds(self, points):
        with pytest.raises(ValueError, match="patience"):
            PoissonTaskArrivals(points, 10, patience=(0.0, 1.0))
        with pytest.raises(ValueError, match="patience"):
            PoissonTaskArrivals(points, 10, patience=(2.0, 1.0))

    def test_weights_validated(self, points):
        with pytest.raises(ValueError, match="weights"):
            PoissonTaskArrivals(points, 10, weights=[1.0, 2.0])  # wrong length
        with pytest.raises(ValueError, match="weights"):
            PoissonTaskArrivals(points, 10, weights=[0.0, 0.0, 0.0])

    def test_window_order(self, points):
        process = PoissonTaskArrivals(points, 10)
        with pytest.raises(ValueError, match="end"):
            process.between(2.0, 1.0)


class TestSampling:
    def test_deterministic_in_seed(self, points):
        process = PoissonTaskArrivals(points, 20)
        a = process.between(0.0, 1.0, seed=4)
        b = process.between(0.0, 1.0, seed=4)
        assert a == b

    def test_times_sorted_and_in_window(self, points):
        process = PoissonTaskArrivals(points, 30)
        arrivals = process.between(2.0, 4.0, seed=1)
        times = [a.arrival_time for a in arrivals]
        assert times == sorted(times)
        assert all(2.0 <= t < 4.0 for t in times)

    def test_expiry_within_patience(self, points):
        process = PoissonTaskArrivals(points, 30, patience=(0.5, 1.5))
        for arrival in process.between(0.0, 2.0, seed=2):
            patience = arrival.expiry - arrival.arrival_time
            assert 0.5 <= patience <= 1.5

    def test_rate_roughly_respected(self, points):
        process = PoissonTaskArrivals(points, 50)
        counts = [len(process.between(0, 1, seed=s)) for s in range(30)]
        assert 40 <= np.mean(counts) <= 60

    def test_weighted_points(self, points):
        process = PoissonTaskArrivals(points, 200, weights=[1.0, 0.0, 0.0])
        arrivals = process.between(0, 1, seed=3)
        assert arrivals
        assert all(a.dp_id == "a" for a in arrivals)

    def test_empty_window(self, points):
        process = PoissonTaskArrivals(points, 10)
        assert process.between(1.0, 1.0, seed=0) == []
