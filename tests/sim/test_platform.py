"""Tests for repro.sim.platform (the dispatch loop)."""

import pytest

from repro.baselines.gta import GTASolver
from repro.games.iegt import IEGTSolver
from repro.geo.point import Point
from repro.geo.travel import TravelModel
from repro.sim.arrivals import PoissonTaskArrivals, TaskArrival
from repro.sim.platform import DispatchSimulator, SimConfig
from repro.sim.workers import WorkerState

from tests.conftest import make_center, make_dp, make_worker, unit_speed_travel


class ScriptedArrivals:
    """Arrival stub: hands each round exactly the scripted tasks.

    Duck-types ``PoissonTaskArrivals.between`` so churn edge cases can be
    staged deterministically instead of hoping a Poisson draw hits them.
    """

    def __init__(self, arrivals):
        self._arrivals = sorted(arrivals, key=lambda a: a.arrival_time)

    def between(self, start, end, seed=None):
        return [a for a in self._arrivals if start <= a.arrival_time < end]


def _simulator(solver=None, n_workers=4, rate=25.0, **config_kwargs):
    center = make_center(
        [
            make_dp("a", 1.0, 0.0),
            make_dp("b", -1.0, 0.5),
            make_dp("c", 0.5, 1.5),
            make_dp("d", -0.5, -1.0),
        ]
    )
    workers = [make_worker(f"w{i}", 0.2 * i, 0.0, max_dp=2) for i in range(n_workers)]
    arrivals = PoissonTaskArrivals(
        center.delivery_points, rate_per_hour=rate, patience=(0.8, 1.6)
    )
    config = SimConfig(
        horizon_hours=config_kwargs.pop("horizon_hours", 4.0),
        round_interval_hours=config_kwargs.pop("round_interval_hours", 0.5),
        epsilon=None,
    )
    return DispatchSimulator(
        center,
        workers,
        arrivals,
        solver if solver is not None else GTASolver(),
        travel=TravelModel(),  # paper speed: 5 km/h
        config=config,
    )


class TestSimConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            SimConfig(horizon_hours=0)
        with pytest.raises(ValueError):
            SimConfig(round_interval_hours=0)
        with pytest.raises(ValueError, match="exceed"):
            SimConfig(horizon_hours=1.0, round_interval_hours=2.0)


class TestWorkerState:
    def test_commit_route_updates_everything(self):
        state = WorkerState.from_worker(make_worker("w", 0, 0))
        state.commit_route(
            now=1.0,
            completion_time=0.5,
            reward=3.0,
            deliveries=3,
            end_location=Point(1.0, 0.0),
        )
        assert state.available_at == 1.5
        assert not state.is_available(1.2)
        assert state.is_available(1.5)
        assert state.earnings == 3.0
        assert state.earning_rate == pytest.approx(6.0)
        assert state.location == Point(1.0, 0.0)
        assert state.deliveries == 3
        assert state.assignments == 1

    def test_negative_completion_rejected(self):
        state = WorkerState.from_worker(make_worker("w", 0, 0))
        with pytest.raises(ValueError):
            state.commit_route(0.0, -1.0, 1.0, 1, Point(0, 0))

    def test_idle_worker_rate_zero(self):
        assert WorkerState.from_worker(make_worker("w", 0, 0)).earning_rate == 0.0


class TestDispatchSimulator:
    def test_runs_expected_rounds(self):
        report = _simulator().run(seed=0)
        assert len(report.rounds) == 8  # 4h / 0.5h

    def test_conservation_of_tasks(self):
        report = _simulator().run(seed=1)
        # Every arrived task is completed, expired, or still pending at the
        # end (pending-and-still-valid tasks are the slack in this bound).
        assert report.completed_tasks + report.expired_tasks <= report.arrived_tasks
        assert report.completed_tasks > 0

    def test_deterministic_in_seed(self):
        a = _simulator().run(seed=5)
        b = _simulator().run(seed=5)
        assert a.describe() == b.describe()
        assert [w.earnings for w in a.worker_states] == [
            w.earnings for w in b.worker_states
        ]

    def test_seeds_differ(self):
        a = _simulator().run(seed=1)
        b = _simulator().run(seed=2)
        assert a.arrived_tasks != b.arrived_tasks or a.describe() != b.describe()

    def test_workers_go_busy_and_return(self):
        report = _simulator(n_workers=2, rate=40.0).run(seed=3)
        # With heavy load and 2 workers, some round must see < 2 available.
        assert any(r.available_workers < 2 for r in report.rounds)
        # Workers ended up relocated to delivery points at least once.
        assert any(w.assignments > 0 for w in report.worker_states)

    def test_completion_rate_bounds(self):
        report = _simulator().run(seed=4)
        assert 0.0 <= report.completion_rate <= 1.0

    def test_fairness_metrics_finite(self):
        report = _simulator(solver=IEGTSolver()).run(seed=6)
        assert report.cumulative_payoff_difference >= 0.0
        assert report.cumulative_average_payoff >= 0.0

    def test_zero_arrival_rounds_ok(self):
        report = _simulator(rate=0.2).run(seed=7)
        assert len(report.rounds) == 8

    def test_requires_delivery_points(self):
        center = make_center([])
        with pytest.raises(ValueError, match="delivery points"):
            DispatchSimulator(
                center,
                [make_worker("w", 0, 0)],
                PoissonTaskArrivals([make_dp("x", 1, 1)], 10),
                GTASolver(),
            )

    def test_churn_task_expiring_exactly_at_round_boundary(self):
        # A task whose expiry lands exactly on a round boundary is expired,
        # not dispatched: the boundary filter keeps `expiry > now` only.
        center = make_center([make_dp("a", 0.3, 0.0)])
        sim = DispatchSimulator(
            center,
            [make_worker("w", 0.0, 0.0)],
            ScriptedArrivals(
                [TaskArrival("edge", "a", arrival_time=0.1, expiry=0.5)]
            ),
            GTASolver(),
            travel=unit_speed_travel(),
            config=SimConfig(horizon_hours=1.0, round_interval_hours=0.5),
        )
        report = sim.run(seed=0)
        # Round 0 predates the arrival; round 1 (t=0.5) sees it already dead.
        assert report.rounds[1].expired_tasks == 1
        assert report.completed_tasks == 0
        assert report.expired_tasks == 1
        assert report.arrived_tasks == 1

    def test_churn_worker_reappears_mid_round_at_drop_off(self):
        # The only worker goes busy at t=0.5 (0.3 h route, done at t=0.8,
        # between round boundaries), then serves the t=1.0 round from its
        # drop-off: available again mid-round, relocated to (0.3, 0).
        center = make_center(
            [make_dp("near", 0.3, 0.0), make_dp("far", 0.4, 0.0)]
        )
        sim = DispatchSimulator(
            center,
            [make_worker("w", 0.0, 0.0)],
            ScriptedArrivals(
                [
                    TaskArrival("t1", "near", arrival_time=0.1, expiry=2.0),
                    TaskArrival("t2", "far", arrival_time=0.6, expiry=3.0),
                ]
            ),
            GTASolver(),
            travel=unit_speed_travel(),
            config=SimConfig(horizon_hours=2.0, round_interval_hours=0.5),
        )
        report = sim.run(seed=0)
        assert [r.assigned_tasks for r in report.rounds] == [0, 1, 1, 0]
        # Round 2 assigning t2 proves the worker reappeared at 0.8 (between
        # boundaries) in time for the t=1.0 decision; the record's count is
        # post-commit, so it reads 0 while the worker is out again.
        assert report.rounds[1].available_workers == 0
        (worker,) = report.worker_states
        assert worker.assignments == 2
        assert worker.location == Point(0.4, 0.0)  # final drop-off
        # Second route returns via the center: 0.3 back + 0.4 out = 0.7 h.
        assert not worker.is_available(1.6) and worker.is_available(1.7)
        assert report.completed_tasks == 2

    def test_churn_empty_round_no_tasks(self):
        # Rounds with an empty queue dispatch nothing and report neutral
        # fairness (no payoffs -> P_dif 0).
        center = make_center([make_dp("a", 0.3, 0.0)])
        sim = DispatchSimulator(
            center,
            [make_worker("w", 0.0, 0.0)],
            ScriptedArrivals([]),
            GTASolver(),
            travel=unit_speed_travel(),
            config=SimConfig(horizon_hours=4.0, round_interval_hours=0.5),
        )
        report = sim.run(seed=0)
        assert len(report.rounds) == 8
        assert all(r.assigned_tasks == 0 for r in report.rounds)
        assert all(r.payoff_difference == 0.0 for r in report.rounds)
        assert report.arrived_tasks == 0
        assert report.completion_rate == 1.0  # vacuous: nothing to deliver

    def test_churn_empty_round_no_workers(self):
        # A workerless platform keeps running; every task waits, then dies.
        center = make_center([make_dp("a", 0.3, 0.0)])
        sim = DispatchSimulator(
            center,
            [],
            ScriptedArrivals(
                [TaskArrival("t", "a", arrival_time=0.1, expiry=0.9)]
            ),
            GTASolver(),
            travel=unit_speed_travel(),
            config=SimConfig(horizon_hours=1.0, round_interval_hours=0.5),
        )
        report = sim.run(seed=0)
        assert all(r.available_workers == 0 for r in report.rounds)
        assert report.completed_tasks == 0
        assert report.expired_tasks == 1
        assert report.completion_rate == 0.0

    def test_fair_solver_reduces_longrun_gap(self):
        # Across seeds, IEGT's cumulative earning-rate gap should not exceed
        # greedy's on average.
        gta_gaps, iegt_gaps = [], []
        for seed in range(3):
            gta_gaps.append(
                _simulator(solver=GTASolver()).run(seed=seed).cumulative_payoff_difference
            )
            iegt_gaps.append(
                _simulator(solver=IEGTSolver())
                .run(seed=seed)
                .cumulative_payoff_difference
            )
        assert sum(iegt_gaps) <= sum(gta_gaps) * 1.25 + 1e-9
