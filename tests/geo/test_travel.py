"""Tests for repro.geo.travel."""

import pytest

from repro.geo.distance import Metric
from repro.geo.point import Point
from repro.geo.travel import TravelModel

A = Point(0.0, 0.0)
B = Point(3.0, 4.0)


class TestTravelModel:
    def test_time_is_distance_over_speed(self):
        model = TravelModel(speed_kmh=5.0)
        assert model.time(A, B) == pytest.approx(1.0)

    def test_default_speed_is_paper_value(self):
        assert TravelModel().speed_kmh == 5.0

    def test_distance(self):
        assert TravelModel().distance(A, B) == pytest.approx(5.0)

    def test_same_point_zero(self):
        model = TravelModel()
        assert model.time(A, A) == 0.0
        assert model.distance(A, A) == 0.0

    @pytest.mark.parametrize("speed", [0.0, -1.0])
    def test_invalid_speed(self, speed):
        with pytest.raises(ValueError, match="speed_kmh"):
            TravelModel(speed_kmh=speed)

    def test_manhattan_metric(self):
        model = TravelModel(speed_kmh=1.0, metric=Metric.MANHATTAN)
        assert model.time(A, B) == pytest.approx(7.0)

    def test_cache_populates_and_clears(self):
        model = TravelModel()
        assert model.cache_size == 0
        model.distance(A, B)
        model.distance(B, A)  # same unordered pair
        assert model.cache_size == 1
        model.clear_cache()
        assert model.cache_size == 0

    def test_cache_disabled(self):
        model = TravelModel(cache=False)
        model.distance(A, B)
        assert model.cache_size == 0
        model.clear_cache()  # must not raise

    def test_cached_value_correct_both_directions(self):
        model = TravelModel(speed_kmh=2.0)
        first = model.time(A, B)
        second = model.time(B, A)
        assert first == pytest.approx(second) == pytest.approx(2.5)

    def test_repr_mentions_speed(self):
        assert "5.0" in repr(TravelModel())
