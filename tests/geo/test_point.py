"""Tests for repro.geo.point."""

import math

import pytest

from repro.geo.point import Point


class TestConstruction:
    def test_valid_point(self):
        p = Point(1.5, -2.0)
        assert p.x == 1.5
        assert p.y == -2.0

    def test_integers_accepted(self):
        p = Point(1, 2)
        assert p.x == 1

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), -float("inf")])
    def test_non_finite_rejected(self, bad):
        with pytest.raises(ValueError, match="finite"):
            Point(bad, 0.0)
        with pytest.raises(ValueError, match="finite"):
            Point(0.0, bad)

    @pytest.mark.parametrize("bad", ["1", None, [1]])
    def test_non_numeric_rejected(self, bad):
        with pytest.raises(TypeError):
            Point(bad, 0.0)

    def test_immutability(self):
        p = Point(0.0, 0.0)
        with pytest.raises(AttributeError):
            p.x = 3.0


class TestDistances:
    def test_distance_to_pythagorean(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == pytest.approx(5.0)

    def test_distance_symmetric(self):
        a, b = Point(1.2, 3.4), Point(-5.0, 0.5)
        assert a.distance_to(b) == pytest.approx(b.distance_to(a))

    def test_distance_to_self_is_zero(self):
        p = Point(7.0, -7.0)
        assert p.distance_to(p) == 0.0

    def test_manhattan(self):
        assert Point(0, 0).manhattan_to(Point(3, 4)) == pytest.approx(7.0)

    def test_triangle_inequality(self):
        a, b, c = Point(0, 0), Point(5, 1), Point(2, 8)
        assert a.distance_to(c) <= a.distance_to(b) + b.distance_to(c) + 1e-12


class TestHelpers:
    def test_midpoint(self):
        assert Point(0, 0).midpoint(Point(2, 4)) == Point(1, 2)

    def test_translated(self):
        assert Point(1, 1).translated(-1, 2) == Point(0, 3)

    def test_as_tuple_and_iter(self):
        p = Point(3.0, 4.0)
        assert p.as_tuple() == (3.0, 4.0)
        assert tuple(p) == (3.0, 4.0)

    def test_centroid(self):
        c = Point.centroid([Point(0, 0), Point(2, 0), Point(1, 3)])
        assert c == Point(1.0, 1.0)

    def test_centroid_empty_raises(self):
        with pytest.raises(ValueError, match="empty"):
            Point.centroid([])

    def test_ordering_lexicographic(self):
        assert Point(1, 5) < Point(2, 0)
        assert Point(1, 1) < Point(1, 2)

    def test_hashable_and_equal(self):
        assert len({Point(1, 2), Point(1, 2), Point(2, 1)}) == 2
