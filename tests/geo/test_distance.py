"""Tests for repro.geo.distance."""

import numpy as np
import pytest

from repro.geo.distance import (
    Metric,
    chebyshev,
    euclidean,
    manhattan,
    pairwise_distance_matrix,
    resolve_metric,
)
from repro.geo.point import Point

A = Point(0.0, 0.0)
B = Point(3.0, 4.0)


class TestMetricFunctions:
    def test_euclidean(self):
        assert euclidean(A, B) == pytest.approx(5.0)

    def test_manhattan(self):
        assert manhattan(A, B) == pytest.approx(7.0)

    def test_chebyshev(self):
        assert chebyshev(A, B) == pytest.approx(4.0)

    @pytest.mark.parametrize("fn", [euclidean, manhattan, chebyshev])
    def test_identity_of_indiscernibles(self, fn):
        assert fn(A, A) == 0.0

    @pytest.mark.parametrize("fn", [euclidean, manhattan, chebyshev])
    def test_symmetry(self, fn):
        assert fn(A, B) == pytest.approx(fn(B, A))


class TestResolveMetric:
    def test_enum_member(self):
        assert resolve_metric(Metric.MANHATTAN) is manhattan

    @pytest.mark.parametrize(
        "name,fn",
        [("euclidean", euclidean), ("MANHATTAN", manhattan), ("Chebyshev", chebyshev)],
    )
    def test_names_case_insensitive(self, name, fn):
        assert resolve_metric(name) is fn

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown metric"):
            resolve_metric("hamming")

    def test_callable_passthrough(self):
        fn = lambda a, b: 42.0
        assert resolve_metric(fn) is fn

    def test_bad_type(self):
        with pytest.raises(TypeError):
            resolve_metric(3.14)


class TestPairwiseMatrix:
    def test_empty(self):
        assert pairwise_distance_matrix([]).shape == (0, 0)

    def test_euclidean_matches_pointwise(self):
        rng = np.random.default_rng(1)
        points = [Point(float(x), float(y)) for x, y in rng.uniform(0, 10, (12, 2))]
        matrix = pairwise_distance_matrix(points)
        for i, p in enumerate(points):
            for j, q in enumerate(points):
                assert matrix[i, j] == pytest.approx(euclidean(p, q))

    def test_non_euclidean_metric(self):
        points = [A, B, Point(-1, 2)]
        matrix = pairwise_distance_matrix(points, Metric.MANHATTAN)
        assert matrix[0, 1] == pytest.approx(7.0)
        assert np.allclose(matrix, matrix.T)
        assert np.all(np.diag(matrix) == 0)

    def test_matrix_symmetric_zero_diag(self):
        points = [Point(1, 1), Point(2, 3), Point(0, -5)]
        matrix = pairwise_distance_matrix(points)
        assert np.allclose(matrix, matrix.T)
        assert np.all(np.diag(matrix) == 0)
