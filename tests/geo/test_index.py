"""Tests for repro.geo.index (uniform grid spatial index)."""

import numpy as np
import pytest

from repro.geo.index import GridIndex
from repro.geo.point import Point


def _random_points(n, seed=0, side=10.0):
    rng = np.random.default_rng(seed)
    return [Point(float(x), float(y)) for x, y in rng.uniform(0, side, (n, 2))]


class TestConstruction:
    def test_invalid_cell_size(self):
        with pytest.raises(ValueError, match="cell_size"):
            GridIndex(0.0)

    def test_build_and_len(self):
        points = _random_points(20)
        index = GridIndex.build([(p, i) for i, p in enumerate(points)], cell_size=1.0)
        assert len(index) == 20

    def test_items_roundtrip(self):
        points = _random_points(5)
        index = GridIndex.build([(p, i) for i, p in enumerate(points)], cell_size=2.0)
        assert sorted(item for _, item in index.items()) == list(range(5))


class TestWithin:
    @pytest.mark.parametrize("cell_size", [0.3, 1.0, 5.0])
    def test_matches_brute_force(self, cell_size):
        points = _random_points(80, seed=3)
        index = GridIndex.build(
            [(p, i) for i, p in enumerate(points)], cell_size=cell_size
        )
        for center in _random_points(10, seed=4):
            for radius in (0.5, 1.7, 4.0):
                expected = sorted(
                    i for i, p in enumerate(points) if center.distance_to(p) <= radius
                )
                assert sorted(index.within(center, radius)) == expected

    def test_radius_zero_exact_hit(self):
        p = Point(1.0, 1.0)
        index = GridIndex.build([(p, "hit")], cell_size=1.0)
        assert index.within(p, 0.0) == ["hit"]

    def test_negative_radius_raises(self):
        index = GridIndex(1.0)
        with pytest.raises(ValueError, match="radius"):
            index.within(Point(0, 0), -1.0)

    def test_empty_index(self):
        assert GridIndex(1.0).within(Point(0, 0), 100.0) == []

    def test_boundary_inclusive(self):
        index = GridIndex.build([(Point(3.0, 0.0), "edge")], cell_size=1.0)
        assert index.within(Point(0, 0), 3.0) == ["edge"]

    def test_rounded_boundary_point_in_adjacent_cell(self):
        # Hypothesis counterexample: the point lives in cell -1 (its exact
        # coordinate is a tiny negative), but its *rounded* distance to the
        # center is exactly the radius, so brute force includes it. The scan
        # window must reach one cell past ceil(radius/cell) to find it.
        p = Point(-5.693229560222134e-274, 0.0)
        index = GridIndex.build([(p, "edge")], cell_size=2.0)
        assert Point(2.0, 0.0).distance_to(p) <= 2.0
        assert index.within(Point(2.0, 0.0), 2.0) == ["edge"]


class TestNearest:
    def test_matches_brute_force(self):
        points = _random_points(60, seed=9)
        index = GridIndex.build([(p, i) for i, p in enumerate(points)], cell_size=0.8)
        for center in _random_points(15, seed=10, side=12.0):
            expected = min(range(60), key=lambda i: center.distance_to(points[i]))
            got = index.nearest(center)
            assert center.distance_to(points[got]) == pytest.approx(
                center.distance_to(points[expected])
            )

    def test_empty_raises(self):
        with pytest.raises(ValueError, match="empty"):
            GridIndex(1.0).nearest(Point(0, 0))

    def test_far_query_point(self):
        points = [Point(0.0, 0.0), Point(1.0, 0.0)]
        index = GridIndex.build([(p, i) for i, p in enumerate(points)], cell_size=0.5)
        assert index.nearest(Point(100.0, 100.0)) == 1
