"""Tests for the repro.obs tracers and enablement tiers."""

import json

import pytest

from repro.obs.tracer import (
    NULL_TRACER,
    TRACE_ENV_VAR,
    JsonlTracer,
    MemoryTracer,
    NullTracer,
    memory_tracer,
    resolve_tracer,
    set_tracing,
    tracing_enabled,
)


@pytest.fixture(autouse=True)
def _clean_tracing_state(monkeypatch):
    """Keep the process-wide override and env var out of other tests."""
    monkeypatch.delenv(TRACE_ENV_VAR, raising=False)
    set_tracing(None)
    yield
    set_tracing(None)


class TestNullTracer:
    def test_disabled_and_noop(self):
        tracer = NullTracer()
        assert tracer.enabled is False
        tracer.event("x", a=1)
        with tracer.span("y", b=2) as span:
            assert span is not None
        tracer.flush()
        tracer.close()

    def test_shared_instance(self):
        assert isinstance(NULL_TRACER, NullTracer)
        assert NULL_TRACER.enabled is False


class TestMemoryTracer:
    def test_event_envelope(self):
        tracer = MemoryTracer()
        tracer.event("fgt.round", round=1, switches=2)
        [record] = tracer.records
        assert record["kind"] == "fgt.round"
        assert record["seq"] == 0
        assert record["ts"] >= 0.0
        assert "dur" not in record
        assert record["round"] == 1 and record["switches"] == 2

    def test_span_emits_dur_on_exit(self):
        tracer = MemoryTracer()
        with tracer.span("catalog.build", center=0) as span:
            assert tracer.records == []  # nothing until exit
            span.add(strategies=5)
        [record] = tracer.records
        assert record["kind"] == "catalog.build"
        assert record["dur"] >= 0.0
        assert record["center"] == 0
        assert record["strategies"] == 5

    def test_seq_is_monotone(self):
        tracer = MemoryTracer()
        for _ in range(3):
            tracer.event("e")
        assert [r["seq"] for r in tracer.records] == [0, 1, 2]

    def test_clear_keeps_counting(self):
        tracer = MemoryTracer()
        tracer.event("a")
        tracer.clear()
        tracer.event("b")
        assert tracer.kinds() == ["b"]
        assert tracer.records[0]["seq"] == 1


class TestJsonlTracer:
    def test_requires_exactly_one_sink(self, tmp_path):
        with pytest.raises(ValueError, match="exactly one"):
            JsonlTracer()
        import io

        with pytest.raises(ValueError, match="exactly one"):
            JsonlTracer(path=tmp_path / "t.jsonl", stream=io.StringIO())

    def test_writes_one_json_per_line(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with JsonlTracer(path) as tracer:
            tracer.event("a", x=1)
            tracer.event("b", y=2)
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0])["kind"] == "a"
        assert json.loads(lines[1])["y"] == 2

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "t.jsonl"
        with JsonlTracer(path) as tracer:
            tracer.event("a")
        assert path.exists()

    def test_emission_after_close_is_dropped(self, tmp_path):
        # A detached (timed-out) solve thread can emit after the run that
        # installed the tracer has closed it; that must not raise or tear
        # the file.
        path = tmp_path / "t.jsonl"
        tracer = JsonlTracer(path)
        tracer.event("before")
        tracer.close()
        tracer.event("after")  # silently dropped
        tracer.flush()  # no-op, must not raise
        lines = path.read_text().splitlines()
        assert [json.loads(line)["kind"] for line in lines] == ["before"]

    def test_stream_not_closed_when_borrowed(self):
        import io

        stream = io.StringIO()
        tracer = JsonlTracer(stream=stream)
        tracer.event("a")
        tracer.close()
        assert not stream.closed
        assert json.loads(stream.getvalue())["kind"] == "a"


class TestEnablement:
    def test_default_is_null(self):
        assert resolve_tracer(False) is NULL_TRACER
        assert resolve_tracer(None) is NULL_TRACER
        assert not tracing_enabled(False)

    def test_instance_wins_outright(self):
        tracer = MemoryTracer()
        set_tracing(False)  # even a force-off override loses to an instance
        assert resolve_tracer(tracer) is tracer
        assert tracing_enabled(tracer)

    def test_true_routes_to_fallback_sink(self):
        assert resolve_tracer(True) is memory_tracer()

    def test_set_tracing_true_and_false(self):
        set_tracing(True)
        assert resolve_tracer(False) is memory_tracer()
        set_tracing(False)
        assert resolve_tracer(False) is NULL_TRACER
        # An explicit per-solver trace=True beats force-off, mirroring
        # verification_enabled(flag=True).
        assert resolve_tracer(True) is memory_tracer()

    def test_set_tracing_instance(self):
        tracer = MemoryTracer()
        set_tracing(tracer)
        assert resolve_tracer(False) is tracer
        assert resolve_tracer(True) is tracer

    def test_set_tracing_path_opens_jsonl(self, tmp_path):
        path = tmp_path / "t.jsonl"
        set_tracing(path)
        sink = resolve_tracer(False)
        assert isinstance(sink, JsonlTracer)
        sink.event("a")
        set_tracing(None)  # closes the path-opened tracer
        assert json.loads(path.read_text())["kind"] == "a"

    def test_set_tracing_rejects_garbage(self):
        with pytest.raises(TypeError, match="cannot trace"):
            set_tracing(42)

    def test_env_var_enables_tracing(self, tmp_path, monkeypatch):
        path = tmp_path / "env.jsonl"
        monkeypatch.setenv(TRACE_ENV_VAR, str(path))
        sink = resolve_tracer(False)
        assert isinstance(sink, JsonlTracer)
        assert sink is resolve_tracer(True)  # same cached tracer
        sink.event("a")
        sink.flush()
        assert json.loads(path.read_text())["kind"] == "a"

    def test_override_beats_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv(TRACE_ENV_VAR, str(tmp_path / "env.jsonl"))
        tracer = MemoryTracer()
        set_tracing(tracer)
        assert resolve_tracer(False) is tracer

    def test_force_off_beats_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv(TRACE_ENV_VAR, str(tmp_path / "env.jsonl"))
        set_tracing(False)
        assert resolve_tracer(False) is NULL_TRACER
