"""Causal span context: ids, propagation, threads, and head sampling."""

import json
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.obs.tracer import (
    SAMPLE_ENV_VAR,
    TRACE_ENV_VAR,
    JsonlTracer,
    MemoryTracer,
    attach_context,
    current_context,
    current_trace_id,
    new_trace_id,
    sample_rate,
    set_tracing,
    start_trace,
    trace_sampled,
)


@pytest.fixture(autouse=True)
def _clean_tracing_state(monkeypatch):
    monkeypatch.delenv(TRACE_ENV_VAR, raising=False)
    monkeypatch.delenv(SAMPLE_ENV_VAR, raising=False)
    set_tracing(None)
    yield
    set_tracing(None)


class TestSpanIds:
    def test_new_trace_ids_are_distinct_hex(self):
        ids = {new_trace_id() for _ in range(64)}
        assert len(ids) == 64
        assert all(int(t, 16) >= 0 for t in ids)

    def test_span_records_carry_envelope_ids(self):
        tracer = MemoryTracer()
        with start_trace("feedcafe00000001"):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    pass
        inner, outer = tracer.records
        assert inner["kind"] == "inner" and outer["kind"] == "outer"
        assert inner["trace"] == outer["trace"] == "feedcafe00000001"
        assert inner["parent"] == outer["span"]
        assert "parent" not in outer  # the root span has no parent
        assert inner["span"] != outer["span"]

    def test_events_are_leaves_under_current_span(self):
        tracer = MemoryTracer()
        with start_trace() as trace_id:
            with tracer.span("work"):
                tracer.event("milestone", n=1)
        event, span = tracer.records
        assert event["trace"] == trace_id
        assert event["parent"] == span["span"]
        assert "span" not in event  # events never allocate a span id

    def test_contextless_events_keep_legacy_shape(self):
        tracer = MemoryTracer()
        tracer.event("fgt.round", round=1)
        [record] = tracer.records
        assert "trace" not in record and "parent" not in record

    def test_spans_outside_start_trace_use_tracer_implicit_id(self):
        # Offline runs (``python -m repro trace``) never call start_trace,
        # yet their spans must still build into one tree per process.
        tracer = MemoryTracer()
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        a, b = tracer.records
        assert a["trace"] == b["trace"] == tracer.trace_id

    def test_start_trace_generates_and_yields_the_id(self):
        with start_trace() as trace_id:
            assert current_trace_id() == trace_id
        assert current_trace_id() is None

    def test_nested_start_trace_restores_outer(self):
        with start_trace("a" * 16):
            with start_trace("b" * 16):
                assert current_trace_id() == "b" * 16
            assert current_trace_id() == "a" * 16


class TestThreadPropagation:
    def test_context_does_not_leak_across_threads_by_default(self):
        seen = {}
        with start_trace("c" * 16):
            thread = threading.Thread(
                target=lambda: seen.update(ctx=current_context())
            )
            thread.start()
            thread.join()
        assert seen["ctx"] is None

    def test_attach_context_carries_trace_into_workers(self):
        tracer = MemoryTracer()
        with start_trace("d" * 16):
            with tracer.span("round"):
                ctx = current_context()  # captured inside the round span

                def work(i):
                    with attach_context(ctx):
                        with tracer.span("worker_task", i=i):
                            pass

                with ThreadPoolExecutor(max_workers=4) as pool:
                    list(pool.map(work, range(8)))
        workers = [r for r in tracer.records if r["kind"] == "worker_task"]
        assert len(workers) == 8
        assert {r["trace"] for r in workers} == {"d" * 16}
        assert all(r["parent"] == ctx.span_id for r in workers)

    def test_attach_context_none_is_noop(self):
        with attach_context(None):
            assert current_context() is None

    def test_concurrent_jsonl_emission_stays_line_atomic(self, tmp_path):
        # Satellite: many threads spanning into one JSONL sink must not
        # interleave bytes — every line parses and all spans arrive.
        path = tmp_path / "t.jsonl"
        tracer = JsonlTracer(path)
        with start_trace("e" * 16):
            ctx = current_context()

            def work(i):
                with attach_context(ctx):
                    with tracer.span("task", i=i) as span:
                        span.add(payload="x" * 64)

            with ThreadPoolExecutor(max_workers=8) as pool:
                list(pool.map(work, range(200)))
        tracer.close()
        lines = path.read_text().splitlines()
        assert len(lines) == 200
        records = [json.loads(line) for line in lines]  # no torn lines
        assert {r["i"] for r in records} == set(range(200))
        assert {r["trace"] for r in records} == {"e" * 16}


class TestSampling:
    def test_default_rate_is_one(self):
        assert sample_rate() == 1.0

    def test_rate_parses_and_clamps(self, monkeypatch):
        monkeypatch.setenv(SAMPLE_ENV_VAR, "0.25")
        assert sample_rate() == 0.25
        monkeypatch.setenv(SAMPLE_ENV_VAR, "7")
        assert sample_rate() == 1.0
        monkeypatch.setenv(SAMPLE_ENV_VAR, "-3")
        assert sample_rate() == 0.0
        monkeypatch.setenv(SAMPLE_ENV_VAR, "garbage")
        assert sample_rate() == 1.0

    def test_sampling_is_deterministic_per_trace_id(self):
        trace_id = new_trace_id()
        decisions = {trace_sampled(trace_id, rate=0.5) for _ in range(10)}
        assert len(decisions) == 1  # same id, same verdict, every time

    def test_rate_zero_drops_whole_trace(self, monkeypatch):
        monkeypatch.setenv(SAMPLE_ENV_VAR, "0")
        tracer = MemoryTracer()
        with start_trace():
            with tracer.span("a"):
                tracer.event("b")
        assert tracer.records == []

    def test_rate_one_keeps_whole_trace(self, monkeypatch):
        monkeypatch.setenv(SAMPLE_ENV_VAR, "1")
        tracer = MemoryTracer()
        with start_trace():
            with tracer.span("a"):
                pass
        assert len(tracer.records) == 1

    def test_explicit_sampled_flag_beats_rate(self, monkeypatch):
        monkeypatch.setenv(SAMPLE_ENV_VAR, "0")
        tracer = MemoryTracer()
        with start_trace(sampled=True):
            tracer.event("kept")
        assert tracer.kinds() == ["kept"]

    def test_fraction_of_traces_survives(self):
        kept = sum(trace_sampled(new_trace_id(), rate=0.5) for _ in range(400))
        assert 100 < kept < 300  # loose: crc32 bucketing is roughly uniform


class TestErrorAnnotation:
    def test_span_records_exception_kind(self):
        tracer = MemoryTracer()
        with start_trace():
            with pytest.raises(RuntimeError):
                with tracer.span("doomed"):
                    raise RuntimeError("boom")
        [record] = tracer.records
        assert record["error"] == "RuntimeError"
