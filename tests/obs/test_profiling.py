"""Profiling hooks: RunRecord metrics, sweep diagnostics, CLI trace command."""

import json

import pytest

from repro.cli import main
from repro.datasets.gmission import GMissionConfig, generate_gmission_like
from repro.experiments.runner import default_algorithms, run_algorithms
from repro.obs import read_trace, reset_metrics, summarize_trace


@pytest.fixture(autouse=True)
def _fresh_metrics():
    reset_metrics()
    yield
    reset_metrics()


@pytest.fixture(scope="module")
def instance():
    return generate_gmission_like(
        GMissionConfig(n_tasks=50, n_workers=6, n_delivery_points=12), seed=3
    )


class TestRunnerProfiling:
    def test_records_carry_phase_timings_and_counters(self, instance):
        records = run_algorithms(
            instance, default_algorithms(include_mpta=False), epsilon=0.6, seed=0
        )
        for record in records:
            assert "phase.catalog_build_cpu_s" in record.metrics
            assert "phase.solve_cpu_s" in record.metrics
            assert record.metrics["phase.solve_cpu_s"] >= 0.0
            assert record.metrics["solver.rounds"] >= 1

    def test_first_arm_pays_cache_misses_later_arms_hit(self, instance):
        records = run_algorithms(
            instance, default_algorithms(include_mpta=False), epsilon=0.6, seed=0
        )
        n_subs = len(instance.subproblems())
        assert records[0].metrics.get("catalog_cache.misses", 0) == n_subs
        assert "catalog_cache.misses" not in records[1].metrics
        assert records[1].metrics.get("catalog_cache.hits", 0) == n_subs

    def test_solver_counters_are_per_arm(self, instance):
        records = run_algorithms(
            instance, default_algorithms(include_mpta=False), epsilon=0.6, seed=0
        )
        by_name = {r.algorithm: r for r in records}
        # FGT best-response counters land on the FGT arm only.
        assert by_name["FGT"].metrics.get("fgt.rounds", 0) >= 1
        assert "fgt.rounds" not in by_name["IEGT"].metrics
        assert by_name["IEGT"].metrics.get("iegt.rounds", 0) >= 1


class TestCliTrace:
    def test_trace_fgt_round_count_matches(self, tmp_path, capsys):
        out_path = tmp_path / "fgt.jsonl"
        code = main(
            [
                "trace",
                "--algo",
                "fgt",
                "--scale",
                "smoke",
                "--seed",
                "0",
                "--output",
                str(out_path),
            ]
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert "rounds" in printed
        records = read_trace(out_path)  # every line parses
        assert records
        summary = summarize_trace(records)
        assert summary.total_rounds("fgt") >= 1
        # Round events agree with the solver's own per-subproblem reports.
        assert summary.events.get("fgt.solve_end", 0) >= 1

    def test_trace_output_is_fresh_each_run(self, tmp_path, capsys):
        out_path = tmp_path / "t.jsonl"
        assert main(["trace", "--scale", "smoke", "--output", str(out_path)]) == 0
        first = len(read_trace(out_path))
        capsys.readouterr()
        assert main(["trace", "--scale", "smoke", "--output", str(out_path)]) == 0
        assert len(read_trace(out_path)) == first  # no append accumulation

    def test_trace_lines_are_valid_json(self, tmp_path, capsys):
        out_path = tmp_path / "t.jsonl"
        assert main(
            ["trace", "--algo", "gta", "--scale", "smoke", "--output", str(out_path)]
        ) == 0
        for line in out_path.read_text().splitlines():
            record = json.loads(line)
            assert {"kind", "seq", "ts"} <= record.keys()
