"""Tests for the declarative SLO board and error-budget burn accounting."""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import (
    GaugeObjective,
    LatencyObjective,
    RatioObjective,
    SLOBoard,
    default_slos,
    rolling_fairness_slo,
)


class TestLatencyObjective:
    def _objective(self, registry, target=0.9, threshold=1.0):
        return LatencyObjective(
            name="lat",
            description="round latency",
            histogram="round_seconds",
            threshold_s=threshold,
            target=target,
        )

    def test_no_events_is_vacuously_compliant(self):
        registry = MetricsRegistry()
        status = self._objective(registry).evaluate(registry)
        assert status.events == 0
        assert status.compliance == 1.0
        assert status.burn == 0.0
        assert status.ok

    def test_compliance_counts_samples_under_threshold(self):
        registry = MetricsRegistry()
        hist = registry.histogram("round_seconds", buckets=(1.0, 5.0))
        for v in (0.2, 0.8, 3.0, 4.0):
            hist.observe(v)
        status = self._objective(registry, target=0.9).evaluate(registry)
        assert status.events == 4
        assert status.bad_events == 2
        assert status.compliance == 0.5
        # burn = (1 - 0.5) / (1 - 0.9) = 5x the error budget
        assert status.burn == pytest.approx(5.0)
        assert not status.ok

    def test_detail_reports_quantiles(self):
        registry = MetricsRegistry()
        registry.histogram("round_seconds").observe(0.01)
        status = self._objective(registry).evaluate(registry)
        assert status.detail["threshold_s"] == 1.0
        assert "p99" in status.detail


class TestRatioObjective:
    def _objective(self, target=0.95):
        return RatioObjective(
            name="hits",
            description="deadline hit rate",
            bad_counter="timeouts",
            total_counter="solves",
            target=target,
        )

    def test_no_events_is_vacuously_compliant(self):
        registry = MetricsRegistry()
        status = self._objective().evaluate(registry)
        assert status.compliance == 1.0 and status.burn == 0.0

    def test_burn_scales_with_bad_fraction(self):
        registry = MetricsRegistry()
        registry.counter("solves").add(100)
        registry.counter("timeouts").add(10)
        status = self._objective(target=0.95).evaluate(registry)
        assert status.compliance == pytest.approx(0.9)
        assert status.burn == pytest.approx(2.0)
        assert not status.ok

    def test_bad_clamped_to_total(self):
        # Racy counter reads can momentarily show bad > total; the board
        # must not report negative compliance.
        registry = MetricsRegistry()
        registry.counter("solves").add(1)
        registry.counter("timeouts").add(5)
        status = self._objective().evaluate(registry)
        assert 0.0 <= status.compliance <= 1.0


class TestBoard:
    def test_default_board_evaluates_all_objectives(self):
        registry = MetricsRegistry()
        board = SLOBoard(registry=registry)
        statuses = board.evaluate()
        names = {s.name for s in statuses}
        assert names == {
            "round_latency",
            "center_deadline_hits",
            "primary_rung_rate",
            "journal_fsync_latency",
        }

    def test_as_dict_reports_breaches_and_worst_burn(self):
        registry = MetricsRegistry()
        registry.counter("dispatch.center_solves").add(10)
        registry.counter("dispatch.solve_timeouts").add(5)
        board = SLOBoard(registry=registry)
        payload = board.as_dict()
        assert payload["ok"] is False
        assert "center_deadline_hits" in payload["breached"]
        assert payload["worst_burn"] > 1.0
        by_name = {o["name"]: o for o in payload["objectives"]}
        assert by_name["center_deadline_hits"]["burn"] == pytest.approx(10.0)
        assert by_name["round_latency"]["burn"] == 0.0  # no rounds yet

    def test_summary_is_compact(self):
        registry = MetricsRegistry()
        summary = SLOBoard(registry=registry).summary()
        assert summary["ok"] is True
        assert summary["breached"] == []
        assert summary["worst_burn"] == 0.0

    def test_custom_objectives(self):
        registry = MetricsRegistry()
        registry.counter("total").add(4)
        registry.counter("bad").add(1)
        board = SLOBoard(
            objectives=[
                RatioObjective(
                    name="only",
                    description="custom",
                    bad_counter="bad",
                    total_counter="total",
                    target=0.5,
                )
            ],
            registry=registry,
        )
        [status] = board.evaluate()
        assert status.name == "only"
        assert status.ok  # 75% compliance against a 50% target

    def test_default_slos_thresholds_are_tunable(self):
        objectives = default_slos(round_latency_s=9.0, fsync_latency_s=0.5)
        by_name = {o.name: o for o in objectives}
        assert by_name["round_latency"].threshold_s == 9.0
        assert by_name["journal_fsync_latency"].threshold_s == 0.5


class TestGaugeObjective:
    def _objective(self, mode="le", threshold=0.5, target=0.99):
        return GaugeObjective(
            name="gini_bound",
            description="rolling gini bounded",
            gauge="fairness.rolling_gini",
            threshold=threshold,
            mode=mode,
            target=target,
        )

    def test_le_mode_compliant_at_or_under_threshold(self):
        registry = MetricsRegistry()
        registry.gauge("fairness.rolling_gini").set(0.5)
        status = self._objective().evaluate(registry)
        assert status.compliance == 1.0
        assert status.events == 1
        assert status.ok
        assert status.detail == {"value": 0.5, "threshold": 0.5}

    def test_le_mode_breach_burns_whole_budget(self):
        registry = MetricsRegistry()
        registry.gauge("fairness.rolling_gini").set(0.8)
        status = self._objective(target=0.99).evaluate(registry)
        assert status.compliance == 0.0
        assert status.bad_events == 1.0
        # burn = (1 - 0) / (1 - 0.99): a binary breach spends it all.
        assert status.burn == pytest.approx(100.0)
        assert not status.ok

    def test_ge_mode_flips_the_comparison(self):
        registry = MetricsRegistry()
        registry.gauge("fairness.rolling_jain").set(0.9)
        objective = GaugeObjective(
            name="jain_floor",
            description="rolling jain floor",
            gauge="fairness.rolling_jain",
            threshold=0.8,
            mode="ge",
        )
        assert objective.evaluate(registry).ok
        registry.gauge("fairness.rolling_jain").set(0.7)
        assert not objective.evaluate(registry).ok

    def test_validation_rejects_bad_mode_and_target(self):
        with pytest.raises(ValueError, match="mode"):
            self._objective(mode="lt")
        with pytest.raises(ValueError, match="target"):
            self._objective(target=1.0)

    def test_rolling_fairness_slo_watches_the_ledger_gauge(self):
        objective = rolling_fairness_slo(threshold=0.4)
        assert objective.gauge == "fairness.rolling_gini"
        assert objective.mode == "le"
        registry = MetricsRegistry()
        registry.gauge("fairness.rolling_gini").set(0.39)
        assert objective.evaluate(registry).ok

    def test_board_integrates_gauge_objectives(self):
        registry = MetricsRegistry()
        registry.gauge("fairness.rolling_gini").set(0.9)
        board = SLOBoard(
            objectives=[*default_slos(), rolling_fairness_slo()],
            registry=registry,
        )
        payload = board.as_dict()
        assert "rolling_fairness" in payload["breached"]
