"""Span-tree reconstruction, critical paths, and torn-tail tolerance."""

import json

import pytest

from repro.obs.reader import (
    TraceFormatError,
    parse_record,
    analyze_trace,
    build_span_trees,
    iter_trace,
    read_trace,
)
from repro.obs.tracer import MemoryTracer, start_trace
from repro.service.faults import tear_journal_tail


def _line(kind, seq, **fields):
    return json.dumps({"kind": kind, "seq": seq, "ts": 0.1 * seq, **fields})


def _nested_trace():
    """One round span with a center child, a rung grandchild, and an event."""
    tracer = MemoryTracer()
    with start_trace("ab" * 8):
        with tracer.span("service.round", round=0):
            with tracer.span("service.center_solve", center="A", round=0):
                with tracer.span(
                    "service.rung", center="A", rung="primary", attempt=0
                ):
                    pass
                tracer.event("service.degraded", center="A", rung="greedy")
    return tracer.records


class TestBuildSpanTrees:
    def test_tree_shape_matches_nesting(self):
        forest = build_span_trees(
            [  # records are dicts; build accepts parsed TraceRecords
                parse_record(json.dumps(r))
                for r in _nested_trace()
            ]
        )
        assert list(forest.roots) == ["ab" * 8]
        [root] = forest.roots["ab" * 8]
        assert root.record.kind == "service.round"
        [center] = root.children
        assert center.record.kind == "service.center_solve"
        kinds = [c.record.kind for c in center.children]
        assert kinds == ["service.rung", "service.degraded"]
        assert forest.orphans == []

    def test_orphans_are_reported_not_lost(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(
            _line(
                "service.rung", 0,
                dur=0.01, trace="f" * 16, span="s1", parent="missing",
            )
            + "\n"
        )
        forest = build_span_trees(path)
        assert len(forest.orphans) == 1
        assert forest.orphans[0].kind == "service.rung"

    def test_contextless_records_are_segregated(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(_line("fgt.round", 0, switches=2) + "\n")
        forest = build_span_trees(path)
        assert forest.roots == {}
        assert len(forest.contextless) == 1

    def test_self_time_subtracts_children(self):
        records = [
            parse_record(json.dumps(r))
            for r in _nested_trace()
        ]
        forest = build_span_trees(records)
        [root] = forest.roots["ab" * 8]
        [center] = root.children
        child_total = sum(
            c.record.dur for c in center.children if c.record.dur is not None
        )
        assert center.self_time == pytest.approx(
            max(0.0, center.record.dur - child_total)
        )


class TestAnalyzeTrace:
    def test_round_critical_path_and_phase_table(self):
        records = [
            parse_record(json.dumps(r))
            for r in _nested_trace()
        ]
        analysis = analyze_trace(records)
        assert analysis.orphan_count == 0
        assert len(analysis.rounds) == 1
        [round_path] = analysis.rounds
        labels = [label for _, label, _ in round_path.steps]
        assert any("center=A" in label for label in labels)
        assert any("rung=primary" in label for label in labels)
        text = analysis.format()
        assert "critical path" in text
        assert "service.rung" in text
        assert "orphan" in text

    def test_format_flags_orphans(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(
            _line(
                "x", 0, dur=0.01, trace="a" * 16, span="s1", parent="gone"
            )
            + "\n"
        )
        analysis = analyze_trace(path)
        assert analysis.orphan_count == 1
        assert "orphan" in analysis.format()


class TestTornTail:
    def _write(self, path, lines, tail=""):
        path.write_text("\n".join(lines) + "\n" + tail)

    def test_torn_final_line_is_forgiven(self, tmp_path):
        # The crash artefact the journal also tolerates: a record cut
        # mid-write by SIGKILL.  tear_journal_tail is the same chaos
        # helper the recovery suite uses.
        path = tmp_path / "t.jsonl"
        self._write(
            path,
            [_line("a", 0), _line("b", 1, dur=0.5, trace="c" * 16, span="s")],
        )
        with path.open("a") as fh:
            fh.write(_line("c", 2))  # no newline: torn by definition
        tear_journal_tail(path, drop_bytes=5)
        records = read_trace(path)
        assert [r.kind for r in records] == ["a", "b"]

    def test_mid_file_damage_still_raises(self, tmp_path):
        path = tmp_path / "t.jsonl"
        self._write(path, [_line("a", 0), "{torn", _line("b", 1)])
        with pytest.raises(TraceFormatError):
            read_trace(path)

    def test_strict_mode_rejects_torn_tail(self, tmp_path):
        path = tmp_path / "t.jsonl"
        self._write(path, [_line("a", 0), "{torn"])
        with pytest.raises(TraceFormatError):
            list(iter_trace(path, tolerate_torn_tail=False))

    def test_torn_tail_after_kill_recover_appends(self, tmp_path):
        # A process killed mid-span leaves a torn line; a restarted
        # process appends fresh records after it.  The reader must treat
        # the damage as mid-file corruption then — intact records follow.
        path = tmp_path / "t.jsonl"
        self._write(path, [_line("a", 0)], tail='{"kind": "half')
        with path.open("a") as fh:
            fh.write("\n" + _line("b", 0) + "\n")
        with pytest.raises(TraceFormatError):
            read_trace(path)

    def test_blank_trailing_lines_are_not_torn(self, tmp_path):
        path = tmp_path / "t.jsonl"
        self._write(path, [_line("a", 0)], tail="\n\n")
        assert [r.kind for r in read_trace(path)] == ["a"]
