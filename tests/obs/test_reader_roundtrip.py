"""Round-trip: everything the tracers write, the reader parses back."""

import pytest

from repro.baselines.gta import GTASolver
from repro.baselines.mpta import MPTASolver
from repro.core.instance import SubProblem
from repro.games.fgt import FGTSolver
from repro.games.iegt import IEGTSolver
from repro.obs import (
    METRICS,
    JsonlTracer,
    read_trace,
    reset_metrics,
    summarize_trace,
)
from repro.obs.reader import TraceFormatError, TraceRecord, parse_record

from tests.conftest import make_center, make_dp, make_worker, unit_speed_travel


def _sub(n_workers=3):
    center = make_center(
        [
            make_dp("a", 1.0, 0.0, n_tasks=3),
            make_dp("b", 0.0, 1.5, n_tasks=2),
            make_dp("c", -2.0, 0.0, n_tasks=2),
        ]
    )
    workers = tuple(
        make_worker(f"w{i}", 0.3 * i, -0.2 * i, max_dp=2) for i in range(n_workers)
    )
    return SubProblem(center, workers, unit_speed_travel())


@pytest.fixture
def trace_path(tmp_path):
    """A trace file produced by all four solvers plus a metrics snapshot."""
    reset_metrics()
    path = tmp_path / "trace.jsonl"
    sub = _sub()
    with JsonlTracer(path) as tracer:
        FGTSolver(epsilon=0.6, trace=tracer).solve(sub, seed=1)
        IEGTSolver(trace=tracer).solve(sub, seed=1)
        GTASolver(trace=tracer).solve(sub, seed=1)
        MPTASolver(trace=tracer).solve(sub, seed=1)
        tracer.event("metrics.snapshot", metrics=METRICS.snapshot())
    reset_metrics()
    return path


class TestRoundTrip:
    def test_every_record_parses(self, trace_path):
        records = read_trace(trace_path)
        assert records, "solvers wrote no records"
        assert all(isinstance(r, TraceRecord) for r in records)

    def test_seq_is_contiguous_and_ordered(self, trace_path):
        records = read_trace(trace_path)
        assert [r.seq for r in records] == list(range(len(records)))
        ts = [r.ts for r in records]
        assert ts == sorted(ts)

    def test_spans_have_durations(self, trace_path):
        records = read_trace(trace_path)
        spans = [r for r in records if r.is_span]
        assert spans, "expected at least the catalog.build span"
        assert {"catalog.build"} <= {r.kind for r in spans}
        assert all(r.dur >= 0.0 for r in spans)

    def test_envelope_stripped_from_fields(self, trace_path):
        for record in read_trace(trace_path):
            for key in ("kind", "seq", "ts", "dur"):
                assert key not in record.fields

    def test_solver_prefixes_present(self, trace_path):
        prefixes = {r.solver for r in read_trace(trace_path)}
        assert {"fgt", "iegt", "gta", "mpta", "catalog", "metrics"} <= prefixes

    def test_summary_counts_rounds_and_metrics(self, trace_path):
        records = read_trace(trace_path)
        summary = summarize_trace(records)
        # Path and record-list entry points agree.
        assert summarize_trace(trace_path).events == summary.events
        fgt_rounds = sum(1 for r in records if r.kind == "fgt.round")
        assert summary.total_rounds("fgt") == fgt_rounds
        assert summary.total_rounds() >= fgt_rounds
        assert summary.metrics, "metrics.snapshot payload lost"
        assert "catalog.builds" in summary.metrics
        assert summary.span_seconds.get("catalog.build", 0.0) > 0.0
        assert summary.format()  # renders without error


class TestParseErrors:
    def test_rejects_invalid_json(self):
        with pytest.raises(TraceFormatError, match="not valid JSON"):
            parse_record("{oops", lineno=3)

    def test_rejects_non_object(self):
        with pytest.raises(TraceFormatError, match="expected an object"):
            parse_record("[1, 2]")

    def test_rejects_missing_envelope_keys(self):
        with pytest.raises(TraceFormatError, match="missing 'ts'"):
            parse_record('{"kind": "x", "seq": 0}')

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"kind":"a","seq":0,"ts":0.0}\n\n\n')
        assert len(read_trace(path)) == 1


class TestRobustnessSummary:
    """The trace summary surfaces degradation/breaker/journal telemetry."""

    @staticmethod
    def _line(kind, seq, **fields):
        import json

        return json.dumps({"kind": kind, "seq": seq, "ts": 0.1 * seq, **fields})

    def test_degraded_and_failure_events_fold(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(
            "\n".join(
                [
                    self._line("service.degraded", 0, center="A", rung="greedy"),
                    self._line("service.degraded", 1, center="B", rung="greedy"),
                    self._line("service.degraded", 2, center="A", rung="skip"),
                    self._line(
                        "service.solve_failure", 3, center="A",
                        rung="primary", error="SolveTimeout",
                    ),
                    self._line(
                        "metrics.snapshot", 4,
                        metrics={
                            "dispatch.degraded_total": 3,
                            "dispatch.solve_timeouts": 1,
                            "service.breaker.opened": 1,
                            "service.journal.records": 42,
                            "fgt.rounds": 9,  # unrelated: must not leak in
                        },
                    ),
                ]
            )
            + "\n"
        )
        summary = summarize_trace(path)
        assert summary.degraded == {"greedy": 2, "skip": 1}
        assert summary.solve_failures == {"SolveTimeout": 1}
        stats = summary.robustness_stats
        assert stats["degraded.greedy"] == 2.0
        assert stats["solve_failure.SolveTimeout"] == 1.0
        assert stats["dispatch.degraded_total"] == 3.0
        assert stats["service.breaker.opened"] == 1.0
        assert stats["service.journal.records"] == 42.0
        assert "fgt.rounds" not in stats
        rendered = summary.format()
        assert "robustness" in rendered
        assert "degraded.greedy" in rendered

    def test_clean_trace_has_no_robustness_section(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(self._line("fgt.round", 0, switches=2) + "\n")
        summary = summarize_trace(path)
        assert summary.robustness_stats == {}
        assert "robustness" not in summary.format()
