"""Tests for the repro.obs metrics registry."""

import time

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    METRICS,
    Histogram,
    MetricsRegistry,
    metrics_registry,
    render_prometheus,
    reset_metrics,
)


class TestPrimitives:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        registry.counter("hits").add()
        registry.counter("hits").add(4)
        assert registry.counter("hits").value == 5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError, match="only go up"):
            MetricsRegistry().counter("c").add(-1)

    def test_gauge_keeps_last_value(self):
        registry = MetricsRegistry()
        registry.gauge("depth").set(3)
        registry.gauge("depth").set(7.5)
        assert registry.gauge("depth").value == 7.5

    def test_histogram_summary(self):
        hist = MetricsRegistry().histogram("h")
        for v in (1.0, 3.0, 2.0):
            hist.observe(v)
        assert hist.count == 3
        assert hist.total == 6.0
        assert hist.min == 1.0
        assert hist.max == 3.0
        assert hist.mean == 2.0

    def test_empty_histogram_mean_is_zero(self):
        assert MetricsRegistry().histogram("h").mean == 0.0


class TestHistogramBuckets:
    def test_default_buckets_are_sorted_and_positive(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)
        assert all(b > 0 for b in DEFAULT_BUCKETS)

    def test_observations_land_in_correct_buckets(self):
        hist = Histogram(buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 1.0, 1.5, 3.0, 10.0):
            hist.observe(v)
        # Non-cumulative slots: (-inf,1], (1,2], (2,4], (4,+inf)
        assert hist.bucket_counts == [2, 1, 1, 1]
        assert hist.cumulative_counts() == [2, 3, 4, 5]

    def test_boundary_value_counts_as_le(self):
        hist = Histogram(buckets=(1.0, 2.0))
        hist.observe(1.0)
        assert hist.bucket_counts[0] == 1  # le="1.0" includes 1.0 exactly

    def test_count_le_is_conservative(self):
        hist = Histogram(buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 3.0):
            hist.observe(v)
        assert hist.count_le(2.0) == 2  # exact bound: whole buckets
        # 3.0 sits in the (2, 4] bucket; a threshold inside that bucket
        # cannot prove the observation is below it.
        assert hist.count_le(3.5) == 2

    def test_quantiles_interpolate_within_bucket(self):
        hist = Histogram(buckets=(1.0, 2.0, 4.0))
        for v in (0.2, 0.4, 1.2, 1.8, 3.0, 3.5):
            hist.observe(v)
        assert 0.0 <= hist.p50 <= 2.0
        assert 2.0 <= hist.p95 <= 3.5  # clamped to the observed max
        assert hist.p99 <= hist.max

    def test_quantiles_clamp_to_observed_extrema(self):
        hist = Histogram(buckets=(10.0,))
        hist.observe(2.0)
        hist.observe(3.0)
        assert hist.p99 <= 3.0
        assert hist.p50 >= 2.0

    def test_empty_histogram_quantiles_are_zero(self):
        hist = Histogram()
        assert hist.p50 == 0.0 and hist.p95 == 0.0 and hist.p99 == 0.0

    def test_invalid_buckets_rejected(self):
        with pytest.raises(ValueError):
            Histogram(buckets=())
        with pytest.raises(ValueError):
            Histogram(buckets=(1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram(buckets=(-1.0, 1.0))

    def test_unsorted_buckets_are_normalised(self):
        assert Histogram(buckets=(2.0, 1.0)).bounds == (1.0, 2.0)

    def test_registry_custom_buckets_apply_at_creation(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", buckets=(0.5, 1.0))
        assert registry.histogram("h") is hist
        assert list(hist.bounds) == [0.5, 1.0]


class TestHistogramExposition:
    """The rendered histogram must parse as spec-compliant exposition."""

    @staticmethod
    def _parse(text, metric):
        buckets, tail = {}, {}
        for line in text.splitlines():
            if line.startswith("#"):
                continue
            name, _, value = line.partition(" ")
            if name.startswith(metric + "_bucket{le=\""):
                le = name[len(metric) + 12 : -2]
                buckets[le] = float(value)
            elif name in (metric + "_sum", metric + "_count"):
                tail[name] = float(value)
        return buckets, tail

    def test_bucket_series_is_cumulative_and_ends_at_inf(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat", buckets=(0.1, 0.5, 1.0))
        for v in (0.05, 0.3, 0.7, 2.0):
            hist.observe(v)
        text = registry.render_prometheus()
        buckets, tail = self._parse(text, "repro_lat")
        assert list(buckets) == ["0.1", "0.5", "1.0", "+Inf"]
        counts = list(buckets.values())
        assert counts == sorted(counts)  # cumulative: monotone non-decreasing
        assert counts == [1.0, 2.0, 3.0, 4.0]
        assert buckets["+Inf"] == tail["repro_lat_count"] == 4.0
        assert tail["repro_lat_sum"] == pytest.approx(3.05)

    def test_le_labels_parse_as_floats(self):
        registry = MetricsRegistry()
        registry.histogram("h").observe(0.01)
        buckets, _ = self._parse(registry.render_prometheus(), "repro_h")
        for le in buckets:
            if le != "+Inf":
                assert float(le) > 0


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")

    def test_name_kind_collision_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("x")
        with pytest.raises(ValueError, match="already registered"):
            registry.histogram("x")

    def test_timer_observes_wall_time(self):
        registry = MetricsRegistry()
        with registry.timer("phase"):
            time.sleep(0.01)
        hist = registry.histogram("phase")
        assert hist.count == 1
        assert hist.total >= 0.005

    def test_snapshot_is_flat_and_json_friendly(self):
        registry = MetricsRegistry()
        registry.counter("c").add(2)
        registry.gauge("g").set(1.5)
        registry.histogram("h").observe(0.25)
        snap = registry.snapshot()
        assert snap["c"] == 2
        assert snap["g"] == 1.5
        assert snap["h.count"] == 1
        assert snap["h.total"] == 0.25
        assert snap["h.min"] == 0.25
        assert snap["h.max"] == 0.25

    def test_empty_histogram_omits_extrema(self):
        registry = MetricsRegistry()
        registry.histogram("h")
        snap = registry.snapshot()
        assert "h.min" not in snap and "h.max" not in snap
        assert snap["h.count"] == 0

    def test_delta_differences_counters_not_gauges(self):
        registry = MetricsRegistry()
        registry.counter("c").add(2)
        registry.gauge("g").set(5.0)
        before = registry.snapshot()
        registry.counter("c").add(3)
        registry.gauge("g").set(9.0)
        registry.histogram("h").observe(1.0)
        delta = registry.delta(before)
        assert delta["c"] == 3
        assert delta["g"] == 9.0  # gauges report their current value
        assert delta["h.count"] == 1
        assert delta["h.total"] == 1.0
        assert "h.min" not in delta  # extrema do not difference

    def test_delta_omits_untouched_keys(self):
        registry = MetricsRegistry()
        registry.counter("c").add(1)
        before = registry.snapshot()
        assert registry.delta(before) == {}

    def test_reset_drops_everything(self):
        registry = MetricsRegistry()
        registry.counter("c").add(1)
        registry.reset()
        assert registry.snapshot() == {}

    def test_format_table(self):
        registry = MetricsRegistry()
        assert "(no metrics recorded)" in registry.format()
        registry.counter("a.b").add(2)
        assert "a.b" in registry.format()


class TestPrometheusRendering:
    def test_kinds_are_preserved(self):
        registry = MetricsRegistry()
        registry.counter("service.rounds").add(2)
        registry.gauge("queue.depth").set(1.5)
        registry.histogram("dispatch.seconds").observe(0.25)
        text = registry.render_prometheus()
        assert "# TYPE repro_service_rounds counter\nrepro_service_rounds 2" in text
        assert "# TYPE repro_queue_depth gauge\nrepro_queue_depth 1.5" in text
        assert "# TYPE repro_dispatch_seconds histogram" in text
        assert "repro_dispatch_seconds_count 1" in text
        assert "repro_dispatch_seconds_sum 0.25" in text
        assert 'repro_dispatch_seconds_bucket{le="+Inf"} 1' in text
        assert text.endswith("\n")

    def test_histogram_extrema_become_gauges(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h")
        hist.observe(1.0)
        hist.observe(3.0)
        text = registry.render_prometheus()
        assert "# TYPE repro_h_min gauge\nrepro_h_min 1" in text
        assert "# TYPE repro_h_max gauge\nrepro_h_max 3" in text

    def test_empty_histogram_omits_extrema(self):
        registry = MetricsRegistry()
        registry.histogram("h")
        text = registry.render_prometheus()
        assert "repro_h_count 0" in text
        assert "_min" not in text and "_max" not in text

    def test_empty_registry_renders_empty_string(self):
        assert MetricsRegistry().render_prometheus() == ""

    def test_name_sanitisation(self):
        registry = MetricsRegistry()
        registry.counter("9weird-name!x").add(1)
        text = registry.render_prometheus()
        assert "repro__9weird_name_x 1" in text

    def test_custom_prefix(self):
        registry = MetricsRegistry()
        registry.counter("c").add(1)
        assert "fta_c 1" in registry.render_prometheus(prefix="fta_")

    def test_integral_floats_render_without_exponent(self):
        registry = MetricsRegistry()
        registry.gauge("g").set(3.0)
        assert "repro_g 3\n" in registry.render_prometheus()

    def test_module_function_uses_singleton(self):
        reset_metrics()
        METRICS.counter("prom.test").add(1)
        try:
            assert "repro_prom_test 1" in render_prometheus()
        finally:
            reset_metrics()

    def test_output_is_scrapable(self):
        # Every non-comment line must be exactly `name value` with a float
        # value — the format the CI smoke job and real scrapers rely on.
        registry = MetricsRegistry()
        registry.counter("a").add(1)
        registry.histogram("b").observe(0.5)
        for line in registry.render_prometheus().strip().splitlines():
            if line.startswith("#"):
                continue
            name, _, value = line.partition(" ")
            assert name and float(value) is not None


class TestSingleton:
    def test_module_singleton_accessors(self):
        assert metrics_registry() is METRICS
        METRICS.counter("test.singleton").add(1)
        assert "test.singleton" in METRICS.snapshot()
        reset_metrics()
        assert "test.singleton" not in METRICS.snapshot()
