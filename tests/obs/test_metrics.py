"""Tests for the repro.obs metrics registry."""

import time

import pytest

from repro.obs.metrics import (
    METRICS,
    MetricsRegistry,
    metrics_registry,
    reset_metrics,
)


class TestPrimitives:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        registry.counter("hits").add()
        registry.counter("hits").add(4)
        assert registry.counter("hits").value == 5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError, match="only go up"):
            MetricsRegistry().counter("c").add(-1)

    def test_gauge_keeps_last_value(self):
        registry = MetricsRegistry()
        registry.gauge("depth").set(3)
        registry.gauge("depth").set(7.5)
        assert registry.gauge("depth").value == 7.5

    def test_histogram_summary(self):
        hist = MetricsRegistry().histogram("h")
        for v in (1.0, 3.0, 2.0):
            hist.observe(v)
        assert hist.count == 3
        assert hist.total == 6.0
        assert hist.min == 1.0
        assert hist.max == 3.0
        assert hist.mean == 2.0

    def test_empty_histogram_mean_is_zero(self):
        assert MetricsRegistry().histogram("h").mean == 0.0


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")

    def test_name_kind_collision_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("x")
        with pytest.raises(ValueError, match="already registered"):
            registry.histogram("x")

    def test_timer_observes_wall_time(self):
        registry = MetricsRegistry()
        with registry.timer("phase"):
            time.sleep(0.01)
        hist = registry.histogram("phase")
        assert hist.count == 1
        assert hist.total >= 0.005

    def test_snapshot_is_flat_and_json_friendly(self):
        registry = MetricsRegistry()
        registry.counter("c").add(2)
        registry.gauge("g").set(1.5)
        registry.histogram("h").observe(0.25)
        snap = registry.snapshot()
        assert snap["c"] == 2
        assert snap["g"] == 1.5
        assert snap["h.count"] == 1
        assert snap["h.total"] == 0.25
        assert snap["h.min"] == 0.25
        assert snap["h.max"] == 0.25

    def test_empty_histogram_omits_extrema(self):
        registry = MetricsRegistry()
        registry.histogram("h")
        snap = registry.snapshot()
        assert "h.min" not in snap and "h.max" not in snap
        assert snap["h.count"] == 0

    def test_delta_differences_counters_not_gauges(self):
        registry = MetricsRegistry()
        registry.counter("c").add(2)
        registry.gauge("g").set(5.0)
        before = registry.snapshot()
        registry.counter("c").add(3)
        registry.gauge("g").set(9.0)
        registry.histogram("h").observe(1.0)
        delta = registry.delta(before)
        assert delta["c"] == 3
        assert delta["g"] == 9.0  # gauges report their current value
        assert delta["h.count"] == 1
        assert delta["h.total"] == 1.0
        assert "h.min" not in delta  # extrema do not difference

    def test_delta_omits_untouched_keys(self):
        registry = MetricsRegistry()
        registry.counter("c").add(1)
        before = registry.snapshot()
        assert registry.delta(before) == {}

    def test_reset_drops_everything(self):
        registry = MetricsRegistry()
        registry.counter("c").add(1)
        registry.reset()
        assert registry.snapshot() == {}

    def test_format_table(self):
        registry = MetricsRegistry()
        assert "(no metrics recorded)" in registry.format()
        registry.counter("a.b").add(2)
        assert "a.b" in registry.format()


class TestSingleton:
    def test_module_singleton_accessors(self):
        assert metrics_registry() is METRICS
        METRICS.counter("test.singleton").add(1)
        assert "test.singleton" in METRICS.snapshot()
        reset_metrics()
        assert "test.singleton" not in METRICS.snapshot()
