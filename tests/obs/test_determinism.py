"""Tracing must never perturb solver results.

The regression here is the acceptance bar of the instrumentation layer:
running any solver with a live tracer attached must produce bit-identical
assignments, payoffs, and round counts to the untraced run.
"""

import pytest

from repro.baselines.gta import GTASolver
from repro.baselines.mpta import MPTASolver
from repro.core.instance import SubProblem
from repro.games.fgt import FGTSolver
from repro.games.iegt import IEGTSolver
from repro.obs import MemoryTracer

from tests.conftest import make_center, make_dp, make_worker, unit_speed_travel


def _sub(n_workers=4, max_dp=2):
    center = make_center(
        [
            make_dp("a", 1.0, 0.0, n_tasks=4),
            make_dp("b", 0.0, 1.5, n_tasks=2),
            make_dp("c", -2.0, 0.0, n_tasks=3),
            make_dp("d", 0.0, -1.0, n_tasks=1),
            make_dp("e", 1.5, 1.5, n_tasks=2),
        ]
    )
    workers = tuple(
        make_worker(f"w{i}", 0.3 * i, -0.2 * i, max_dp=max_dp)
        for i in range(n_workers)
    )
    return SubProblem(center, workers, unit_speed_travel())


SOLVERS = [
    pytest.param(FGTSolver, {"epsilon": 0.6}, "fgt", id="fgt"),
    pytest.param(IEGTSolver, {}, "iegt", id="iegt"),
    pytest.param(GTASolver, {}, "gta", id="gta"),
    pytest.param(MPTASolver, {}, "mpta", id="mpta"),
]


@pytest.mark.parametrize("solver_cls, kwargs, prefix", SOLVERS)
def test_traced_run_is_bit_identical(solver_cls, kwargs, prefix):
    sub = _sub()
    tracer = MemoryTracer()

    plain = solver_cls(**kwargs).solve(sub, seed=11)
    traced = solver_cls(trace=tracer, **kwargs).solve(sub, seed=11)

    assert traced.assignment.as_mapping() == plain.assignment.as_mapping()
    assert [w.payoff for w in traced.assignment] == [
        w.payoff for w in plain.assignment
    ]
    assert traced.rounds == plain.rounds
    assert traced.converged == plain.converged
    # The traced run actually traced something.
    assert tracer.records, f"{solver_cls.__name__} emitted no trace records"


@pytest.mark.parametrize("solver_cls, kwargs, prefix", SOLVERS)
def test_trace_brackets_solve(solver_cls, kwargs, prefix):
    """Every solver opens with *.solve_start and closes with *.solve_end."""
    tracer = MemoryTracer()
    solver_cls(trace=tracer, **kwargs).solve(_sub(), seed=3)
    kinds = tracer.kinds()
    assert kinds.count(f"{prefix}.solve_start") == 1
    assert kinds[-1] == f"{prefix}.solve_end"


def test_fgt_round_events_match_reported_rounds():
    tracer = MemoryTracer()
    result = FGTSolver(trace=tracer).solve(_sub(), seed=5)
    rounds = [r for r in tracer.records if r["kind"] == "fgt.round"]
    assert len(rounds) == result.rounds
    assert [r["round"] for r in rounds] == list(range(1, result.rounds + 1))
    total_switches = sum(r["switches"] for r in rounds)
    switch_events = [r for r in tracer.records if r["kind"] == "fgt.switch"]
    assert len(switch_events) == total_switches


def test_iegt_round_events_match_reported_rounds():
    tracer = MemoryTracer()
    result = IEGTSolver(trace=tracer).solve(_sub(), seed=5)
    rounds = [r for r in tracer.records if r["kind"] == "iegt.round"]
    assert len(rounds) == result.rounds
