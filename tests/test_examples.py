"""Smoke tests: the example scripts must run and tell their stories.

Only the fast examples run in the unit suite; the longer simulations and
sweeps are exercised by their underlying module tests.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def _run(name: str, capsys) -> str:
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = _run("quickstart.py", capsys)
        assert "GTA" in out and "IEGT" in out
        assert "payoff diff" in out

    def test_quickstart_fair_beats_greedy(self, capsys):
        out = _run("quickstart.py", capsys)
        rows = {}
        for line in out.splitlines():
            parts = line.split()
            if parts and parts[0] in {"GTA-W", "FGT-W", "IEGT-W"}:
                rows[parts[0]] = float(parts[1])
        assert rows["IEGT-W"] <= rows["GTA-W"]
        assert rows["FGT-W"] <= rows["GTA-W"]

    def test_convergence_study(self, capsys):
        out = _run("convergence_study.py", capsys)
        assert "FGT: converged" in out
        assert "IEGT: converged" in out
        assert "payoff difference" in out

    def test_food_delivery(self, capsys):
        out = _run("food_delivery.py", capsys)
        assert "Lunch rush" in out
        for policy in ("GTA", "MPTA", "FGT", "IEGT"):
            assert policy in out

    def test_live_dispatch(self, capsys):
        out = _run("live_dispatch.py", capsys)
        assert "service up at http://127.0.0.1:" in out
        assert "preview again" in out
        assert "invariant checkers" in out
        # The unchanged-centers preview must be served from the cache.
        assert "3/0" in out
