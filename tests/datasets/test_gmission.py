"""Tests for repro.datasets.gmission (GM surrogate generator)."""

import numpy as np
import pytest

from repro.core.exceptions import DatasetError
from repro.datasets.gmission import GMissionConfig, generate_gmission_like


def _small(**overrides):
    defaults = dict(n_tasks=80, n_workers=10, n_delivery_points=20)
    defaults.update(overrides)
    return GMissionConfig(**defaults)


class TestConfigValidation:
    @pytest.mark.parametrize(
        "field,value",
        [
            ("n_tasks", 0),
            ("n_workers", -1),
            ("n_hotspots", 0),
            ("expiry_min_hours", 0.0),
            ("space_km", 0.0),
            ("max_delivery_points", 0),
        ],
    )
    def test_invalid_fields(self, field, value):
        with pytest.raises(DatasetError):
            _small(**{field: value})

    def test_more_points_than_tasks_rejected(self):
        with pytest.raises(DatasetError, match="n_delivery_points"):
            _small(n_tasks=10, n_delivery_points=11)

    def test_inverted_expiry_bounds_rejected(self):
        with pytest.raises(DatasetError, match="expiry"):
            _small(expiry_min_hours=3.0, expiry_max_hours=1.0)

    def test_defaults_match_table1(self):
        cfg = GMissionConfig()
        assert cfg.n_tasks == 200
        assert cfg.n_workers == 40
        assert cfg.n_delivery_points == 100


class TestGeneration:
    def test_single_center_at_task_centroid(self):
        inst = generate_gmission_like(_small(), seed=0)
        assert len(inst.centers) == 1
        center = inst.centers[0]
        # Paper: dc.l is the centroid of all task locations; tasks live at
        # cluster centroids, so the weighted centroid of the points equals it.
        xs = sum(dp.location.x * dp.task_count for dp in center.delivery_points)
        ys = sum(dp.location.y * dp.task_count for dp in center.delivery_points)
        n = center.task_count
        assert center.location.x == pytest.approx(xs / n, abs=1e-6)
        assert center.location.y == pytest.approx(ys / n, abs=1e-6)

    def test_population_counts(self):
        inst = generate_gmission_like(_small(), seed=1)
        assert inst.task_count == 80
        assert inst.delivery_point_count == 20
        assert len(inst.workers) == 10

    def test_every_cluster_nonempty(self):
        inst = generate_gmission_like(_small(), seed=2)
        assert all(dp.task_count > 0 for dp in inst.centers[0].delivery_points)

    def test_expiries_in_range(self):
        cfg = _small(expiry_min_hours=0.7, expiry_max_hours=1.9)
        inst = generate_gmission_like(cfg, seed=3)
        for task in inst.centers[0].tasks:
            assert 0.7 <= task.expiry <= 1.9

    def test_workers_attached_to_the_center(self):
        inst = generate_gmission_like(_small(), seed=4)
        assert all(w.center_id == "gm_dc0" for w in inst.workers)

    def test_deterministic_in_seed(self):
        a = generate_gmission_like(_small(), seed=8)
        b = generate_gmission_like(_small(), seed=8)
        assert [w.location for w in a.workers] == [w.location for w in b.workers]
        assert a.centers[0].location == b.centers[0].location

    def test_locations_clipped_to_space(self):
        cfg = _small(space_km=4.0)
        inst = generate_gmission_like(cfg, seed=5)
        for w in inst.workers:
            assert 0 <= w.location.x <= 4.0
            assert 0 <= w.location.y <= 4.0

    def test_clustered_geometry(self):
        # Hotspot sampling should leave large empty regions: the average
        # nearest-neighbour distance is far below a uniform layout's.
        cfg = _small(n_tasks=200, n_delivery_points=50, n_hotspots=3,
                     hotspot_std_km=0.3, space_km=10.0)
        inst = generate_gmission_like(cfg, seed=6)
        points = [dp.location for dp in inst.centers[0].delivery_points]
        spread_x = max(p.x for p in points) - min(p.x for p in points)
        nn = []
        for p in points:
            nn.append(min(p.distance_to(q) for q in points if q != p))
        assert np.mean(nn) < spread_x / 5
