"""Tests for repro.datasets.io (CSV round-trips)."""

import pytest

from repro.core.exceptions import DatasetError
from repro.datasets.gmission import GMissionConfig, generate_gmission_like
from repro.datasets.io import load_instance, save_instance
from repro.datasets.synthetic import SynConfig, generate_synthetic


@pytest.fixture
def instance():
    cfg = SynConfig(
        n_centers=2,
        n_workers=6,
        n_delivery_points=10,
        n_tasks=30,
        space_km=10.0,
        expiry_spread=0.3,
        speed_kmh=4.0,
    )
    return generate_synthetic(cfg, seed=5)


class TestRoundTrip:
    def test_counts_preserved(self, instance, tmp_path):
        save_instance(instance, tmp_path / "inst")
        loaded = load_instance(tmp_path / "inst")
        assert loaded.task_count == instance.task_count
        assert loaded.delivery_point_count == instance.delivery_point_count
        assert len(loaded.workers) == len(instance.workers)
        assert len(loaded.centers) == len(instance.centers)

    def test_entities_preserved_exactly(self, instance, tmp_path):
        save_instance(instance, tmp_path / "inst")
        loaded = load_instance(tmp_path / "inst")
        assert loaded.centers == instance.centers
        assert loaded.workers == instance.workers

    def test_travel_speed_preserved(self, instance, tmp_path):
        save_instance(instance, tmp_path / "inst")
        loaded = load_instance(tmp_path / "inst")
        assert loaded.travel.speed_kmh == 4.0

    def test_gmission_roundtrip(self, tmp_path):
        inst = generate_gmission_like(
            GMissionConfig(n_tasks=40, n_workers=5, n_delivery_points=8), seed=1
        )
        save_instance(inst, tmp_path / "gm")
        loaded = load_instance(tmp_path / "gm")
        assert loaded.centers == inst.centers
        assert loaded.workers == inst.workers

    def test_save_creates_directory(self, instance, tmp_path):
        target = tmp_path / "deep" / "nested"
        save_instance(instance, target)
        assert (target / "tasks.csv").exists()


class TestErrors:
    def test_missing_file_rejected(self, instance, tmp_path):
        save_instance(instance, tmp_path / "inst")
        (tmp_path / "inst" / "tasks.csv").unlink()
        with pytest.raises(DatasetError, match="tasks.csv"):
            load_instance(tmp_path / "inst")

    def test_empty_directory_rejected(self, tmp_path):
        with pytest.raises(DatasetError):
            load_instance(tmp_path)
