"""Tests for repro.datasets.clustering (k-means)."""

import numpy as np
import pytest

from repro.core.exceptions import DatasetError
from repro.datasets.clustering import kmeans


def _blobs(seed=0, n_per=30, centers=((0, 0), (10, 10), (0, 10))):
    rng = np.random.default_rng(seed)
    parts = [
        rng.normal(loc=c, scale=0.5, size=(n_per, 2)) for c in centers
    ]
    return np.vstack(parts)


class TestKMeans:
    def test_finds_separated_blobs(self):
        points = _blobs()
        result = kmeans(points, 3, seed=1)
        assert result.k == 3
        # Each true blob maps to exactly one cluster.
        labels = result.labels
        for start in (0, 30, 60):
            blob_labels = set(labels[start : start + 30])
            assert len(blob_labels) == 1

    def test_labels_match_nearest_centroid(self):
        points = _blobs(seed=3)
        result = kmeans(points, 3, seed=2)
        d = ((points[:, None, :] - result.centroids[None, :, :]) ** 2).sum(axis=2)
        assert np.array_equal(result.labels, d.argmin(axis=1))

    def test_inertia_is_total_squared_distance(self):
        points = _blobs(seed=5)
        result = kmeans(points, 3, seed=5)
        d = ((points - result.centroids[result.labels]) ** 2).sum()
        assert result.inertia == pytest.approx(float(d))

    def test_deterministic_in_seed(self):
        points = _blobs(seed=7)
        a = kmeans(points, 4, seed=11)
        b = kmeans(points, 4, seed=11)
        assert np.array_equal(a.labels, b.labels)
        assert np.allclose(a.centroids, b.centroids)

    def test_k_equals_n(self):
        points = np.array([[0.0, 0.0], [1.0, 1.0], [2.0, 2.0]])
        result = kmeans(points, 3, seed=0)
        assert sorted(result.labels.tolist()) == [0, 1, 2]
        assert result.inertia == pytest.approx(0.0)

    def test_k_one(self):
        points = _blobs()
        result = kmeans(points, 1, seed=0)
        assert np.allclose(result.centroids[0], points.mean(axis=0))

    def test_k_larger_than_n_rejected(self):
        with pytest.raises(DatasetError, match="clusters"):
            kmeans(np.zeros((2, 2)), 3)

    def test_k_below_one_rejected(self):
        with pytest.raises(DatasetError, match="k"):
            kmeans(np.zeros((5, 2)), 0)

    def test_non_2d_rejected(self):
        with pytest.raises(DatasetError, match="2-D"):
            kmeans(np.zeros(5), 2)

    def test_duplicate_points_handled(self):
        points = np.zeros((10, 2))
        result = kmeans(points, 2, seed=0)
        assert result.k == 2
        assert result.inertia == pytest.approx(0.0)

    def test_no_empty_clusters_on_separated_data(self):
        points = _blobs(seed=9)
        result = kmeans(points, 3, seed=9)
        assert len(set(result.labels.tolist())) == 3
