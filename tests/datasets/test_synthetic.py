"""Tests for repro.datasets.synthetic (SYN generator)."""

import numpy as np
import pytest

from repro.core.exceptions import DatasetError
from repro.datasets.synthetic import SynConfig, generate_synthetic


def _small(**overrides):
    defaults = dict(
        n_centers=3, n_workers=20, n_delivery_points=30, n_tasks=100, space_km=10.0
    )
    defaults.update(overrides)
    return SynConfig(**defaults)


class TestConfigValidation:
    @pytest.mark.parametrize(
        "field,value",
        [
            ("expiry_hours", 0.0),
            ("expiry_spread", 1.0),
            ("max_delivery_points", 0),
            ("space_km", -1.0),
            ("speed_kmh", 0.0),
            ("association", "magnetic"),
        ],
    )
    def test_invalid_fields(self, field, value):
        with pytest.raises(DatasetError):
            _small(**{field: value})

    def test_paper_scale_matches_table1(self):
        cfg = SynConfig.paper_scale()
        assert cfg.n_centers == 50
        assert cfg.n_workers == 2000
        assert cfg.n_delivery_points == 5000
        assert cfg.n_tasks == 100_000
        assert cfg.space_km == 100.0
        assert cfg.association == "random"

    def test_scaled(self):
        cfg = SynConfig.paper_scale().scaled(0.1)
        assert cfg.n_centers == 5
        assert cfg.n_tasks == 10_000
        with pytest.raises(DatasetError):
            cfg.scaled(0.0)


class TestGeneration:
    def test_population_counts(self):
        inst = generate_synthetic(_small(), seed=0)
        assert len(inst.centers) == 3
        assert len(inst.workers) == 20
        assert inst.delivery_point_count == 30
        assert inst.task_count == 100

    def test_locations_within_space(self):
        cfg = _small()
        inst = generate_synthetic(cfg, seed=1)
        for c in inst.centers:
            assert 0 <= c.location.x <= cfg.space_km
            for dp in c.delivery_points:
                assert 0 <= dp.location.x <= cfg.space_km
                assert 0 <= dp.location.y <= cfg.space_km

    def test_unit_rewards_and_common_expiry(self):
        cfg = _small(expiry_hours=1.5)
        inst = generate_synthetic(cfg, seed=2)
        for c in inst.centers:
            for task in c.tasks:
                assert task.reward == 1.0
                assert task.expiry == 1.5

    def test_expiry_spread(self):
        cfg = _small(expiry_hours=2.0, expiry_spread=0.5)
        inst = generate_synthetic(cfg, seed=3)
        expiries = [t.expiry for c in inst.centers for t in c.tasks]
        assert min(expiries) >= 1.0
        assert max(expiries) <= 2.0
        assert len(set(expiries)) > 1

    def test_deterministic_in_seed(self):
        a = generate_synthetic(_small(), seed=9)
        b = generate_synthetic(_small(), seed=9)
        assert a.describe() == b.describe()
        assert [w.location for w in a.workers] == [w.location for w in b.workers]

    def test_seeds_differ(self):
        a = generate_synthetic(_small(), seed=1)
        b = generate_synthetic(_small(), seed=2)
        assert [w.location for w in a.workers] != [w.location for w in b.workers]

    def test_nearest_association(self):
        inst = generate_synthetic(_small(association="nearest"), seed=4)
        centers = {c.center_id: c for c in inst.centers}
        for w in inst.workers:
            own = w.location.distance_to(centers[w.center_id].location)
            for c in inst.centers:
                assert own <= w.location.distance_to(c.location) + 1e-9

    def test_random_association_reaches_all_centers(self):
        inst = generate_synthetic(
            _small(association="random", n_workers=60), seed=5
        )
        assert len({w.center_id for w in inst.workers}) == 3

    def test_speed_carried_to_travel_model(self):
        inst = generate_synthetic(_small(speed_kmh=7.5), seed=6)
        assert inst.travel.speed_kmh == 7.5

    def test_tasks_without_points_rejected(self):
        with pytest.raises(DatasetError, match="without delivery points"):
            generate_synthetic(_small(n_delivery_points=0, n_tasks=5), seed=0)

    def test_empty_populations_allowed(self):
        inst = generate_synthetic(
            _small(n_workers=0, n_delivery_points=0, n_tasks=0), seed=0
        )
        assert inst.task_count == 0

    def test_max_dp_applied_to_workers(self):
        inst = generate_synthetic(_small(max_delivery_points=2), seed=7)
        assert all(w.max_delivery_points == 2 for w in inst.workers)
