"""End-to-end pipeline tests on generated datasets."""

import pytest

from repro import (
    FGTSolver,
    GMissionConfig,
    GTASolver,
    IEGTSolver,
    MPTASolver,
    SynConfig,
    generate_gmission_like,
    generate_synthetic,
)
from repro.vdps.catalog import build_catalog

ALL_SOLVERS = [
    GTASolver(epsilon=0.6),
    MPTASolver(epsilon=0.6, node_budget=50_000),
    FGTSolver(epsilon=0.6),
    IEGTSolver(epsilon=0.6),
]


@pytest.fixture(scope="module")
def gm_instance():
    return generate_gmission_like(
        GMissionConfig(n_tasks=100, n_workers=12, n_delivery_points=25), seed=9
    )


@pytest.fixture(scope="module")
def syn_instance():
    cfg = SynConfig(
        n_centers=2, n_workers=16, n_delivery_points=40, n_tasks=400, space_km=12.0
    )
    return generate_synthetic(cfg, seed=9)


class TestGMPipeline:
    @pytest.mark.parametrize("solver", ALL_SOLVERS, ids=lambda s: s.name)
    def test_every_solver_produces_valid_assignment(self, gm_instance, solver):
        sub = gm_instance.subproblems()[0]
        catalog = build_catalog(sub, epsilon=0.6)
        result = solver.solve(sub, catalog=catalog, seed=4)
        assignment = result.assignment  # construction validates
        assert len(assignment) == len(sub.online_workers)
        assert assignment.average_payoff >= 0.0

    def test_game_solvers_beat_greedy_fairness(self, gm_instance):
        sub = gm_instance.subproblems()[0]
        catalog = build_catalog(sub, epsilon=0.6)
        greedy = GTASolver().solve(sub, catalog=catalog).assignment.payoff_difference
        fgt = FGTSolver().solve(sub, catalog=catalog, seed=4)
        iegt = IEGTSolver().solve(sub, catalog=catalog, seed=4)
        assert fgt.assignment.payoff_difference <= greedy + 1e-9
        assert iegt.assignment.payoff_difference <= greedy + 1e-9

    def test_mpta_total_payoff_dominates(self, gm_instance):
        sub = gm_instance.subproblems()[0]
        catalog = build_catalog(sub, epsilon=0.6)
        mpta = MPTASolver(node_budget=50_000).solve(sub, catalog=catalog)
        for solver in (GTASolver(), FGTSolver(), IEGTSolver()):
            other = solver.solve(sub, catalog=catalog, seed=4)
            assert (
                mpta.assignment.total_payoff
                >= other.assignment.total_payoff - 1e-9
            )


class TestSYNPipeline:
    def test_multi_center_solving(self, syn_instance):
        subs = syn_instance.subproblems()
        assert len(subs) == 2
        solver = FGTSolver(epsilon=2.0)
        payoffs = []
        for sub in subs:
            result = solver.solve(sub, seed=1)
            payoffs.extend(result.assignment.payoffs)
        assert len(payoffs) == len(syn_instance.workers)

    def test_pruning_speeds_up_but_same_singletons(self, syn_instance):
        sub = max(syn_instance.subproblems(), key=lambda s: len(s.workers))
        pruned = build_catalog(sub, epsilon=1.0)
        unpruned = build_catalog(sub, epsilon=None)
        assert pruned.total_strategy_count <= unpruned.total_strategy_count
        for worker in pruned.workers:
            pruned_singles = {
                s.point_ids
                for s in pruned.strategies(worker.worker_id)
                if s.size == 1
            }
            unpruned_singles = {
                s.point_ids
                for s in unpruned.strategies(worker.worker_id)
                if s.size == 1
            }
            assert pruned_singles == unpruned_singles
