"""Failure-injection tests: corrupted inputs must fail loudly, not quietly."""

import csv

import pytest

from repro.core.exceptions import (
    DatasetError,
    InvalidAssignmentError,
    InvalidInstanceError,
    ReproError,
)
from repro.datasets.gmission import GMissionConfig, generate_gmission_like
from repro.datasets.io import load_instance, save_instance
from repro.games.fgt import FGTSolver
from repro.games.iegt import IEGTSolver
from repro.core.instance import SubProblem
from repro.vdps.catalog import build_catalog

from tests.conftest import make_center, make_dp, make_worker, unit_speed_travel


@pytest.fixture
def saved_instance(tmp_path):
    inst = generate_gmission_like(
        GMissionConfig(n_tasks=30, n_workers=4, n_delivery_points=8), seed=0
    )
    save_instance(inst, tmp_path / "inst")
    return tmp_path / "inst"


def _rewrite_cell(path, row_index, column, value):
    with path.open(newline="") as fh:
        rows = list(csv.DictReader(fh))
        fieldnames = rows[0].keys()
    rows[row_index][column] = value
    with path.open("w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=fieldnames)
        writer.writeheader()
        writer.writerows(rows)


class TestCorruptedCSVs:
    def test_negative_expiry_rejected(self, saved_instance):
        _rewrite_cell(saved_instance / "tasks.csv", 0, "expiry", "-1.0")
        with pytest.raises(ValueError, match="expiry"):
            load_instance(saved_instance)

    def test_non_numeric_coordinate_rejected(self, saved_instance):
        _rewrite_cell(saved_instance / "workers.csv", 0, "x", "not-a-number")
        with pytest.raises(ValueError):
            load_instance(saved_instance)

    def test_dangling_task_reference_rejected(self, saved_instance):
        # Point a task at a delivery point that does not exist: its tasks
        # are silently dropped only if nothing references them, but the
        # entity validation must reject mismatched membership.
        _rewrite_cell(saved_instance / "tasks.csv", 0, "dp_id", "ghost_dp")
        with pytest.raises((ValueError, ReproError)):
            load_instance(saved_instance)

    def test_duplicate_worker_rejected(self, saved_instance):
        _rewrite_cell(saved_instance / "workers.csv", 1, "worker_id", "gm_w0")
        with pytest.raises(InvalidInstanceError, match="duplicate"):
            load_instance(saved_instance)

    def test_worker_referencing_missing_center(self, saved_instance):
        _rewrite_cell(saved_instance / "workers.csv", 0, "center_id", "ghost")
        with pytest.raises(InvalidInstanceError, match="unknown center"):
            load_instance(saved_instance)

    def test_zero_max_dp_rejected(self, saved_instance):
        _rewrite_cell(saved_instance / "workers.csv", 0, "max_dp", "0")
        with pytest.raises(ValueError, match="max_delivery_points"):
            load_instance(saved_instance)


class TestExceptionHierarchy:
    @pytest.mark.parametrize(
        "exc", [DatasetError, InvalidAssignmentError, InvalidInstanceError]
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)
        with pytest.raises(ReproError):
            raise exc("boom")

    def test_reserved_exceptions_in_hierarchy(self):
        from repro.core.exceptions import ConvergenceError, InfeasibleRouteError

        assert issubclass(InfeasibleRouteError, ReproError)
        assert issubclass(ConvergenceError, ReproError)


class TestDegenerateGameInputs:
    def test_single_worker_population(self):
        center = make_center([make_dp("a", 1, 0, n_tasks=2)])
        sub = SubProblem(center, (make_worker("w", 0, 0),), unit_speed_travel())
        for solver in (FGTSolver(), IEGTSolver()):
            result = solver.solve(sub, seed=0)
            assert result.converged
            # Lone worker takes its best strategy.
            assert result.assignment.busy_worker_count == 1

    def test_all_workers_offline(self):
        center = make_center([make_dp("a", 1, 0)])
        offline = make_worker("w", 0, 0).offline()
        sub = SubProblem(center, (offline,), unit_speed_travel())
        catalog = build_catalog(sub)
        assert catalog.workers == ()
        result = FGTSolver().solve(sub, catalog=catalog, seed=0)
        assert len(result.assignment) == 0

    def test_center_with_no_delivery_points(self):
        sub = SubProblem(
            make_center([]), (make_worker("w", 0, 0),), unit_speed_travel()
        )
        result = IEGTSolver().solve(sub, seed=0)
        assert result.assignment.busy_worker_count == 0

    def test_every_task_already_expired(self):
        center = make_center([make_dp("a", 1, 0, expiry=0.0)])
        sub = SubProblem(center, (make_worker("w", 0, 0),), unit_speed_travel())
        result = FGTSolver().solve(sub, seed=0)
        assert result.assignment.busy_worker_count == 0
        assert result.converged
