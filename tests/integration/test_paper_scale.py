"""Paper-scale configuration checks (construction only; no full solves).

These tests document two facts DESIGN.md §4 relies on:

1. the literal Table I configuration constructs fine at full size
   (100K tasks / 5K points / 2K workers / 50 centers) in well under a
   second, so ``Scale.PAPER`` runs are purely a matter of solver time; and
2. the *literal* SYN reading (random worker-center association over a
   100 km square at 5 km/h with 2 h deadlines) is degenerate — nearly
   every worker is hours away from every task — which is why the library
   defaults to nearest-center association at a density-preserving scale.
"""

import pytest

from repro.datasets.synthetic import SynConfig, generate_synthetic
from repro.vdps.catalog import build_catalog


@pytest.fixture(scope="module")
def paper_instance():
    return generate_synthetic(SynConfig.paper_scale(), seed=0)


class TestPaperScaleConstruction:
    def test_full_population_sizes(self, paper_instance):
        assert len(paper_instance.centers) == 50
        assert len(paper_instance.workers) == 2000
        assert paper_instance.delivery_point_count == 5000
        assert paper_instance.task_count == 100_000

    def test_partitions_into_fifty_subproblems(self, paper_instance):
        subs = paper_instance.subproblems()
        assert len(subs) == 50
        assert sum(len(s.workers) for s in subs) == 2000

    def test_literal_setting_is_degenerate(self, paper_instance):
        # Random association at 100 km scale: workers average ~50 km (10 h)
        # from their center while deadlines are 2 h, so VDPS catalogs are
        # (near-)empty — the documented motivation for the 'nearest'
        # default (DESIGN.md §4).
        sub = paper_instance.subproblems()[0]
        catalog = build_catalog(sub, epsilon=2.0)
        assert catalog.total_strategy_count <= len(sub.workers)

    def test_density_preserving_ci_setting_is_not_degenerate(self):
        from repro.experiments.config import SYN_GRID, SYN_SPACE_KM, Scale

        grid = SYN_GRID[Scale.CI]
        cfg = SynConfig(
            n_centers=grid.n_centers,
            n_workers=grid.workers_default,
            n_delivery_points=grid.dps_default,
            n_tasks=grid.tasks_default,
            space_km=SYN_SPACE_KM[Scale.CI],
        )
        instance = generate_synthetic(cfg, seed=0)
        sub = instance.subproblems()[0]
        catalog = build_catalog(sub, epsilon=grid.epsilon_default)
        busy_workers = sum(
            1 for w in catalog.workers if catalog.has_strategies(w.worker_id)
        )
        assert busy_workers >= len(catalog.workers) // 2
