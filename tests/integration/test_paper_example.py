"""Integration test built around the paper's Figure 1 narrative.

The introduction's example: a greedy assignment reaches a high average
payoff but a large payoff difference; a fairness-aware assignment cuts the
difference dramatically while keeping a comparable average payoff.  We
reconstruct a geometry in that spirit and check the full pipeline delivers
the same story.
"""

import pytest

from repro.baselines.exhaustive import ExhaustiveSolver
from repro.baselines.gta import GTASolver
from repro.core.instance import SubProblem
from repro.games.fgt import FGTSolver
from repro.games.iegt import IEGTSolver
from repro.vdps.catalog import build_catalog

from tests.conftest import make_center, make_dp, make_worker, unit_speed_travel


@pytest.fixture(scope="module")
def figure1_like_subproblem():
    """dc at (2,2); two workers; five delivery points with task counts 6,3,4,2,2.

    Mirrors Figure 1's structure: dp1 is close and rich (6 tasks), so a
    greedy worker grabs the lion's share.
    """
    center = make_center(
        [
            make_dp("dp1", 1.0, 1.0, n_tasks=6, expiry=2.5),
            make_dp("dp2", 2.0, 0.5, n_tasks=3, expiry=4.0),
            make_dp("dp3", 3.0, 1.0, n_tasks=4, expiry=5.0),
            make_dp("dp4", 3.5, 2.0, n_tasks=2, expiry=5.0),
            make_dp("dp5", 4.0, 3.0, n_tasks=2, expiry=6.0),
        ],
        "dc0",
        2.0,
        2.0,
    )
    workers = (
        make_worker("w1", 1.0, 2.0, max_dp=3),
        make_worker("w2", 3.0, 1.0, max_dp=3),
    )
    return SubProblem(center, workers, unit_speed_travel())


class TestFigure1Story:
    def test_greedy_is_unfair(self, figure1_like_subproblem):
        catalog = build_catalog(figure1_like_subproblem)
        greedy = GTASolver().solve(figure1_like_subproblem, catalog=catalog)
        optimum = ExhaustiveSolver().solve(figure1_like_subproblem, catalog=catalog)
        assert greedy.assignment.payoff_difference > optimum.assignment.payoff_difference

    def test_fair_solvers_close_the_gap(self, figure1_like_subproblem):
        catalog = build_catalog(figure1_like_subproblem)
        greedy = GTASolver().solve(figure1_like_subproblem, catalog=catalog)
        for solver in (FGTSolver(), IEGTSolver()):
            fair = solver.solve(figure1_like_subproblem, catalog=catalog, seed=1)
            assert (
                fair.assignment.payoff_difference
                <= greedy.assignment.payoff_difference + 1e-9
            )

    def test_fair_average_payoff_comparable(self, figure1_like_subproblem):
        # The paper's example: difference drops from 0.71 to 0.26 while the
        # average payoff moves only from 2.44 to 2.42.  Require the fair
        # average to stay within 50% of greedy's here.
        catalog = build_catalog(figure1_like_subproblem)
        greedy = GTASolver().solve(figure1_like_subproblem, catalog=catalog)
        fair = FGTSolver().solve(figure1_like_subproblem, catalog=catalog, seed=1)
        assert fair.assignment.average_payoff >= 0.5 * greedy.assignment.average_payoff

    def test_both_workers_busy_under_fair_assignment(self, figure1_like_subproblem):
        fair = IEGTSolver().solve(figure1_like_subproblem, seed=0)
        assert fair.assignment.busy_worker_count == 2
