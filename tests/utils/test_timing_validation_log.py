"""Tests for repro.utils.timing, validation, and log."""

import logging
import time

import pytest

from repro.utils.log import (
    disable_console_logging,
    enable_console_logging,
    get_logger,
)
from repro.utils.timing import CpuTimer, Stopwatch, record_time, timed
from repro.utils.validation import (
    require,
    require_non_negative,
    require_positive,
    require_type,
)


class TestTimers:
    def test_stopwatch_measures_sleep(self):
        with Stopwatch() as sw:
            time.sleep(0.02)
        assert sw.elapsed >= 0.015

    def test_cpu_timer_accumulates(self):
        timer = CpuTimer()
        with timer:
            sum(range(10000))
        first = timer.elapsed
        with timer:
            sum(range(10000))
        assert timer.elapsed >= first

    def test_double_start_rejected(self):
        timer = Stopwatch()
        timer.start()
        with pytest.raises(RuntimeError, match="already running"):
            timer.start()

    def test_stop_without_start_rejected(self):
        with pytest.raises(RuntimeError, match="not running"):
            Stopwatch().stop()

    def test_reset(self):
        timer = Stopwatch()
        with timer:
            pass
        timer.reset()
        assert timer.elapsed == 0.0

    def test_timed_returns_result_and_time(self):
        result, seconds = timed(lambda x: x * 2, 21)
        assert result == 42
        assert seconds >= 0.0

    def test_record_time_appends(self):
        store = {}
        with record_time(store, "step"):
            pass
        with record_time(store, "step"):
            pass
        assert len(store["step"]) == 2


class TestValidation:
    def test_require(self):
        require(True, "fine")
        with pytest.raises(ValueError, match="broken"):
            require(False, "broken")

    def test_require_type(self):
        require_type(1, int, "x")
        with pytest.raises(TypeError, match="x must be int"):
            require_type("1", int, "x")

    def test_require_positive(self):
        require_positive(0.1, "x")
        with pytest.raises(ValueError):
            require_positive(0.0, "x")

    def test_require_non_negative(self):
        require_non_negative(0.0, "x")
        with pytest.raises(ValueError):
            require_non_negative(-0.1, "x")


class TestLog:
    def test_get_logger_namespaced(self):
        assert get_logger("games").name == "repro.games"
        assert get_logger("repro.games").name == "repro.games"

    def test_enable_console_logging_idempotent(self):
        logger = enable_console_logging(logging.WARNING)
        n_handlers = len(logger.handlers)
        enable_console_logging(logging.WARNING)
        assert len(logger.handlers) == n_handlers
        disable_console_logging()

    def test_repeat_call_updates_level(self):
        logger = enable_console_logging(logging.WARNING)
        try:
            handler = logger.handlers[-1]
            assert handler.level == logging.WARNING
            enable_console_logging(logging.DEBUG)
            assert logger.level == logging.DEBUG
            assert handler.level == logging.DEBUG
            assert handler.formatter is not None
        finally:
            disable_console_logging()

    def test_disable_removes_handler(self):
        logger = enable_console_logging(logging.INFO)
        n_before = len(logger.handlers)
        disable_console_logging()
        assert len(logger.handlers) == n_before - 1
        disable_console_logging()  # idempotent
        assert len(logger.handlers) == n_before - 1
