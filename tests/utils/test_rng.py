"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import RngFactory, ensure_rng, spawn_rng


class TestEnsureRng:
    def test_none_is_deterministic_default(self):
        a = ensure_rng(None).integers(0, 1000, 5)
        b = ensure_rng(None).integers(0, 1000, 5)
        assert np.array_equal(a, b)

    def test_int_seed(self):
        a = ensure_rng(42).integers(0, 1000, 5)
        b = ensure_rng(42).integers(0, 1000, 5)
        assert np.array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert ensure_rng(gen) is gen

    def test_numpy_integer_accepted(self):
        assert isinstance(ensure_rng(np.int64(7)), np.random.Generator)

    def test_bad_type_rejected(self):
        with pytest.raises(TypeError):
            ensure_rng("seed")


class TestSpawnRng:
    def test_children_are_independent(self):
        children = spawn_rng(ensure_rng(1), 3)
        draws = [c.integers(0, 10**9) for c in children]
        assert len(set(draws)) == 3

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            spawn_rng(ensure_rng(1), 0)


class TestRngFactory:
    def test_same_name_same_stream(self):
        factory = RngFactory(5)
        a = factory.get("alg").integers(0, 1000, 4)
        b = factory.get("alg").integers(0, 1000, 4)
        assert np.array_equal(a, b)

    def test_different_names_differ(self):
        factory = RngFactory(5)
        a = factory.get("alg1").integers(0, 10**9)
        b = factory.get("alg2").integers(0, 10**9)
        assert a != b

    def test_root_seed_changes_streams(self):
        a = RngFactory(1).get("x").integers(0, 10**9)
        b = RngFactory(2).get("x").integers(0, 10**9)
        assert a != b

    def test_seed_for_matches_get(self):
        factory = RngFactory(9)
        seed = factory.seed_for("x")
        direct = np.random.default_rng(seed).integers(0, 10**9)
        assert direct == factory.get("x").integers(0, 10**9)

    def test_stable_across_instances_with_same_root(self):
        assert RngFactory(3).seed_for("n") == RngFactory(3).seed_for("n")
