"""Tests for repro.baselines.random_assign and repro.baselines.exhaustive."""

import pytest

from repro.baselines.exhaustive import ExhaustiveSolver, enumerate_joint_strategies
from repro.baselines.random_assign import RandomSolver
from repro.core.instance import SubProblem
from repro.core.payoff import average_payoff, payoff_difference
from repro.vdps.catalog import build_catalog

from tests.conftest import make_center, make_dp, make_worker, unit_speed_travel


def _sub(n_workers=2, max_dp=1):
    center = make_center(
        [
            make_dp("a", 1.0, 0.0, n_tasks=3),
            make_dp("b", -1.0, 0.0, n_tasks=3),
            make_dp("c", 0.0, 2.0, n_tasks=1),
        ]
    )
    workers = tuple(make_worker(f"w{i}", 0, 0, max_dp=max_dp) for i in range(n_workers))
    return SubProblem(center, workers, unit_speed_travel())


class TestRandomSolver:
    def test_valid_assignment(self):
        result = RandomSolver().solve(_sub(), seed=0)
        assert len(result.assignment) == 2

    def test_deterministic_in_seed(self):
        a = RandomSolver().solve(_sub(), seed=3).assignment.as_mapping()
        b = RandomSolver().solve(_sub(), seed=3).assignment.as_mapping()
        assert a == b

    def test_varies_across_seeds(self):
        mappings = {
            tuple(sorted(RandomSolver().solve(_sub(), seed=s).assignment.as_mapping().items()))
            for s in range(15)
        }
        assert len(mappings) > 1

    def test_null_probability_one_idles_everyone(self):
        result = RandomSolver(null_probability=1.0).solve(_sub(), seed=0)
        assert result.assignment.busy_worker_count == 0

    def test_invalid_null_probability(self):
        with pytest.raises(ValueError):
            RandomSolver(null_probability=1.5)


class TestEnumerateJointStrategies:
    def test_counts_all_disjoint_combinations(self):
        catalog = build_catalog(_sub())
        joints = list(enumerate_joint_strategies(catalog))
        # Each worker: null + 3 singletons; conflicts remove the 3 joint
        # picks of the same point: 4*4 - 3 = 13.
        assert len(joints) == 13

    def test_all_disjoint(self):
        catalog = build_catalog(_sub())
        for joint in enumerate_joint_strategies(catalog):
            claimed = []
            for strategy in joint.values():
                claimed.extend(strategy.point_ids)
            assert len(claimed) == len(set(claimed))


class TestExhaustiveSolver:
    def test_lexicographic_optimum(self):
        sub = _sub()
        catalog = build_catalog(sub)
        result = ExhaustiveSolver().solve(sub, catalog=catalog)
        best_key = (
            result.assignment.payoff_difference,
            -result.assignment.average_payoff,
        )
        for joint in enumerate_joint_strategies(catalog):
            payoffs = [joint[w.worker_id].payoff for w in catalog.workers]
            key = (payoff_difference(payoffs), -average_payoff(payoffs))
            assert best_key <= (key[0] + 1e-12, key[1] + 1e-12)

    def test_symmetric_workers_get_equal_payoffs(self):
        # Two identical workers, two symmetric points -> optimum is perfectly
        # fair.
        center = make_center(
            [make_dp("a", 1.0, 0.0, n_tasks=2), make_dp("b", -1.0, 0.0, n_tasks=2)]
        )
        workers = (make_worker("w1", 0, 0, max_dp=1), make_worker("w2", 0, 0, max_dp=1))
        sub = SubProblem(center, workers, unit_speed_travel())
        result = ExhaustiveSolver().solve(sub)
        assert result.assignment.payoff_difference == pytest.approx(0.0)
        assert result.assignment.busy_worker_count == 2

    def test_state_limit_enforced(self):
        sub = _sub(n_workers=3)
        with pytest.raises(ValueError, match="exceeds limit"):
            ExhaustiveSolver(state_limit=5).solve(sub)

    def test_name(self):
        assert ExhaustiveSolver().name == "OPT"
