"""Tests for repro.baselines.gta."""

import pytest

from repro.baselines.gta import GTASolver
from repro.core.instance import SubProblem
from repro.vdps.catalog import build_catalog

from tests.conftest import make_center, make_dp, make_worker, unit_speed_travel


def _sub():
    center = make_center(
        [
            make_dp("a", 1.0, 0.0, n_tasks=5),
            make_dp("b", 2.0, 0.0, n_tasks=1),
            make_dp("c", -1.0, 0.0, n_tasks=3),
        ]
    )
    # w_near sits on the center; w_far starts 1 km away.
    workers = (make_worker("w_near", 0, 0, max_dp=1), make_worker("w_far", 0, 1, max_dp=1))
    return SubProblem(center, workers, unit_speed_travel())


class TestGlobalOrder:
    def test_best_pair_wins_contested_point(self):
        # Both workers' best strategy is {a} (5 tasks, nearest); the global
        # pass gives it to w_near whose payoff for it is higher.
        result = GTASolver(order="global").solve(_sub())
        mapping = result.assignment.as_mapping()
        assert mapping["w_near"] == ("a",)
        assert mapping["w_far"] in {("b",), ("c",)}

    def test_valid_and_deterministic(self):
        a = GTASolver().solve(_sub()).assignment.as_mapping()
        b = GTASolver().solve(_sub()).assignment.as_mapping()
        assert a == b

    def test_single_pass(self):
        result = GTASolver().solve(_sub())
        assert result.rounds == 1
        assert result.converged


class TestWorkerOrder:
    def test_first_worker_takes_its_best(self):
        result = GTASolver(order="worker").solve(_sub())
        mapping = result.assignment.as_mapping()
        # Catalog order: w_near first, takes {a}.
        assert mapping["w_near"] == ("a",)

    def test_invalid_order_rejected(self):
        with pytest.raises(ValueError, match="order"):
            GTASolver(order="alphabetical")


class TestEdgeCases:
    def test_no_strategies(self):
        center = make_center([make_dp("far", 100, 0, expiry=0.5)])
        sub = SubProblem(center, (make_worker("w", 0, 0),), unit_speed_travel())
        result = GTASolver().solve(sub)
        assert result.assignment.busy_worker_count == 0

    def test_more_workers_than_points(self):
        center = make_center([make_dp("a", 1, 0, n_tasks=2)])
        workers = tuple(make_worker(f"w{i}", 0, 0, max_dp=1) for i in range(3))
        sub = SubProblem(center, workers, unit_speed_travel())
        result = GTASolver().solve(sub)
        assert result.assignment.busy_worker_count == 1

    def test_name(self):
        assert GTASolver(epsilon=0.5).name == "GTA"
        assert GTASolver().name == "GTA-W"

    def test_seed_ignored_but_accepted(self):
        sub = _sub()
        catalog = build_catalog(sub)
        a = GTASolver().solve(sub, catalog=catalog, seed=1).assignment.as_mapping()
        b = GTASolver().solve(sub, catalog=catalog, seed=2).assignment.as_mapping()
        assert a == b
