"""Tests for repro.baselines.maxmin (progressive-filling fairness baseline)."""

import pytest

from repro.baselines.gta import GTASolver
from repro.baselines.maxmin import MaxMinSolver
from repro.core.instance import SubProblem
from repro.vdps.catalog import build_catalog

from tests.conftest import make_center, make_dp, make_worker, unit_speed_travel


def _sub(n_workers=3):
    center = make_center(
        [
            make_dp("a", 1.0, 0.0, n_tasks=5),
            make_dp("b", -1.0, 0.0, n_tasks=3),
            make_dp("c", 0.0, 2.0, n_tasks=2),
            make_dp("d", 0.0, -2.0, n_tasks=1),
        ]
    )
    workers = tuple(
        make_worker(f"w{i}", 0.1 * i, 0.0, max_dp=2) for i in range(n_workers)
    )
    return SubProblem(center, workers, unit_speed_travel())


class TestMaxMin:
    def test_valid_assignment(self):
        result = MaxMinSolver().solve(_sub(), seed=0)
        assert result.converged
        assert len(result.assignment) == 3

    def test_deterministic(self):
        a = MaxMinSolver().solve(_sub(), seed=1).assignment.as_mapping()
        b = MaxMinSolver().solve(_sub(), seed=2).assignment.as_mapping()
        assert a == b

    def test_higher_floor_than_greedy(self):
        # Progressive filling maximises the minimum, so its floor should be
        # at least greedy's on contested instances.
        sub = _sub(n_workers=4)
        catalog = build_catalog(sub)
        maxmin = MaxMinSolver().solve(sub, catalog=catalog)
        gta = GTASolver().solve(sub, catalog=catalog)
        assert min(maxmin.assignment.payoffs) >= min(gta.assignment.payoffs) - 1e-9

    def test_fairer_than_greedy(self):
        sub = _sub(n_workers=4)
        catalog = build_catalog(sub)
        maxmin = MaxMinSolver().solve(sub, catalog=catalog)
        gta = GTASolver().solve(sub, catalog=catalog)
        assert (
            maxmin.assignment.payoff_difference
            <= gta.assignment.payoff_difference + 1e-9
        )

    def test_every_worker_with_options_gets_something(self):
        result = MaxMinSolver().solve(_sub(), seed=0)
        # 4 points, 3 workers with maxDP 2: everyone can be lifted off zero.
        assert all(p > 0 for p in result.assignment.payoffs)

    def test_no_strategies(self):
        center = make_center([make_dp("far", 100, 0, expiry=0.5)])
        sub = SubProblem(center, (make_worker("w", 0, 0),), unit_speed_travel())
        result = MaxMinSolver().solve(sub)
        assert result.converged
        assert result.assignment.busy_worker_count == 0

    def test_name(self):
        assert MaxMinSolver().name == "MAXMIN"
