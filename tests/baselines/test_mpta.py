"""Tests for repro.baselines.mpta (maximal total payoff via B&B)."""

import numpy as np
import pytest

from repro.baselines.exhaustive import enumerate_joint_strategies
from repro.baselines.gta import GTASolver
from repro.baselines.mpta import MPTASolver
from repro.core.instance import SubProblem
from repro.vdps.catalog import build_catalog

from tests.conftest import make_center, make_dp, make_worker, unit_speed_travel


def _random_sub(seed, n_points=5, n_workers=3, max_dp=2):
    rng = np.random.default_rng(seed)
    dps = [
        make_dp(
            f"p{i}",
            float(rng.uniform(-3, 3)),
            float(rng.uniform(-3, 3)),
            n_tasks=int(rng.integers(1, 5)),
            expiry=float(rng.uniform(3, 9)),
        )
        for i in range(n_points)
    ]
    workers = tuple(
        make_worker(
            f"w{i}", float(rng.uniform(-1, 1)), float(rng.uniform(-1, 1)), max_dp=max_dp
        )
        for i in range(n_workers)
    )
    return SubProblem(make_center(dps), workers, unit_speed_travel())


def _optimal_total(catalog):
    best = 0.0
    for joint in enumerate_joint_strategies(catalog):
        best = max(best, sum(s.payoff for s in joint.values()))
    return best


class TestOptimality:
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_exhaustive_on_tiny_instances(self, seed):
        sub = _random_sub(seed)
        catalog = build_catalog(sub)
        result = MPTASolver().solve(sub, catalog=catalog)
        assert result.converged  # search certified optimal
        assert result.assignment.total_payoff == pytest.approx(
            _optimal_total(catalog), rel=1e-9
        )

    @pytest.mark.parametrize("seed", range(5))
    def test_never_worse_than_greedy(self, seed):
        sub = _random_sub(seed, n_points=6, n_workers=4)
        catalog = build_catalog(sub)
        mpta = MPTASolver(node_budget=50).solve(sub, catalog=catalog)
        gta = GTASolver().solve(sub, catalog=catalog)
        assert mpta.assignment.total_payoff >= gta.assignment.total_payoff - 1e-9


class TestBudget:
    def test_tiny_budget_uncertified(self):
        sub = _random_sub(1, n_points=6, n_workers=4, max_dp=3)
        catalog = build_catalog(sub)
        result = MPTASolver(node_budget=3).solve(sub, catalog=catalog)
        assert not result.converged  # truncated search is reported

    def test_large_budget_certified(self):
        sub = _random_sub(1)
        result = MPTASolver(node_budget=10_000_000).solve(sub)
        assert result.converged


class TestEdgeCases:
    def test_no_workers(self):
        center = make_center([make_dp("a", 1, 0)])
        sub = SubProblem(center, (), unit_speed_travel())
        result = MPTASolver().solve(sub)
        assert result.assignment.total_payoff == 0.0

    def test_no_strategies(self):
        center = make_center([make_dp("a", 50, 0, expiry=0.1)])
        sub = SubProblem(center, (make_worker("w", 0, 0),), unit_speed_travel())
        result = MPTASolver().solve(sub)
        assert result.assignment.busy_worker_count == 0

    def test_name(self):
        assert MPTASolver(epsilon=1.0).name == "MPTA"
        assert MPTASolver().name == "MPTA-W"

    def test_deterministic(self):
        sub = _random_sub(4)
        a = MPTASolver().solve(sub).assignment.as_mapping()
        b = MPTASolver().solve(sub).assignment.as_mapping()
        assert a == b
