"""Tests for repro.analysis (diagnostics, comparison, decomposition)."""

import pytest

from repro.analysis import (
    compare_assignments,
    decompose_fairness,
    diagnose,
)
from repro.baselines.gta import GTASolver
from repro.core.assignment import Assignment, WorkerAssignment
from repro.core.instance import SubProblem
from repro.core.routing import Route
from repro.games.iegt import IEGTSolver
from repro.vdps.catalog import build_catalog

from tests.conftest import make_center, make_dp, make_worker, unit_speed_travel


def _route(*dps, start=1.0, gap=1.0):
    times = tuple(start + i * gap for i in range(len(dps)))
    return Route(tuple(dps), times)


@pytest.fixture
def assignment():
    r1 = _route(make_dp("a", 1, 0, n_tasks=4))          # payoff 4
    r2 = _route(make_dp("b", 2, 0, n_tasks=2), start=2.0)  # payoff 1
    return Assignment(
        [
            WorkerAssignment(make_worker("w_rich", 0, 0), r1),
            WorkerAssignment(make_worker("w_poor", 0, 0), r2),
            WorkerAssignment(make_worker("w_idle", 0, 0)),
        ]
    )


class TestDiagnose:
    def test_per_worker_rows(self, assignment):
        report = diagnose(assignment)
        rows = {r.worker_id: r for r in report.workers}
        assert rows["w_rich"].payoff == pytest.approx(4.0)
        assert rows["w_rich"].task_count == 4
        assert rows["w_rich"].route_hours == pytest.approx(1.0)
        assert rows["w_idle"].idle
        assert rows["w_idle"].reward_per_task == 0.0

    def test_population_stats(self, assignment):
        report = diagnose(assignment)
        assert report.idle_count == 1
        assert report.busy_count == 2
        assert report.idle_fraction == pytest.approx(1 / 3)
        assert report.assigned_tasks == 6
        assert report.total_payoff == pytest.approx(5.0)
        assert report.payoff_difference == assignment.payoff_difference

    def test_top_and_bottom(self, assignment):
        report = diagnose(assignment)
        assert report.top_earners(1)[0].worker_id == "w_rich"
        assert report.bottom_earners(1)[0].worker_id == "w_idle"

    def test_format(self, assignment):
        text = diagnose(assignment).format()
        assert "w_rich" in text and "gini=" in text
        short = diagnose(assignment).format(max_rows=1)
        assert "w_poor" not in short

    def test_empty_assignment(self):
        report = diagnose(Assignment([]))
        assert report.total_payoff == 0.0
        assert report.idle_fraction == 0.0


class TestCompare:
    def _pair(self):
        center = make_center(
            [
                make_dp("a", 1.0, 0.0, n_tasks=5),
                make_dp("b", -1.0, 0.0, n_tasks=2),
                make_dp("c", 0.0, 1.5, n_tasks=2),
            ]
        )
        workers = tuple(make_worker(f"w{i}", 0.1 * i, 0, max_dp=1) for i in range(3))
        sub = SubProblem(center, workers, unit_speed_travel())
        catalog = build_catalog(sub)
        greedy = GTASolver().solve(sub, catalog=catalog).assignment
        fair = IEGTSolver().solve(sub, catalog=catalog, seed=1).assignment
        return greedy, fair

    def test_winners_losers_partition(self):
        greedy, fair = self._pair()
        comparison = compare_assignments(greedy, fair, "GTA", "IEGT")
        n = len(comparison.deltas)
        assert (
            len(comparison.winners)
            + len(comparison.losers)
            + comparison.unchanged_count
            == n
        )

    def test_aggregates_match_inputs(self):
        greedy, fair = self._pair()
        comparison = compare_assignments(greedy, fair)
        assert comparison.payoff_difference_a == greedy.payoff_difference
        assert comparison.fairness_improvement == pytest.approx(
            greedy.payoff_difference - fair.payoff_difference
        )

    def test_format_mentions_labels(self):
        greedy, fair = self._pair()
        text = compare_assignments(greedy, fair, "GTA", "IEGT").format()
        assert "GTA -> IEGT" in text

    def test_mismatched_workers_rejected(self, assignment):
        other = Assignment([WorkerAssignment(make_worker("stranger", 0, 0))])
        with pytest.raises(ValueError, match="different workers"):
            compare_assignments(assignment, other)

    def test_identity_comparison(self, assignment):
        comparison = compare_assignments(assignment, assignment)
        assert not comparison.winners
        assert not comparison.losers
        assert comparison.fairness_improvement == pytest.approx(0.0)


class TestTolerantCompare:
    """``strict=False``: population churn becomes data, not an exception."""

    def _churned_pair(self):
        r_a = _route(make_dp("a", 1, 0, n_tasks=4))
        r_b = _route(make_dp("b", 2, 0, n_tasks=2), start=2.0)
        before = Assignment(
            [
                WorkerAssignment(make_worker("w_stay", 0, 0), r_a),
                WorkerAssignment(make_worker("w_gone", 0, 0), r_b),
            ]
        )
        after = Assignment(
            [
                WorkerAssignment(make_worker("w_stay", 0, 0), r_b),
                WorkerAssignment(make_worker("w_new", 0, 0), r_a),
                WorkerAssignment(make_worker("w_new2", 0, 0)),
            ]
        )
        return before, after

    def test_strict_still_raises_and_suggests_tolerant(self):
        before, after = self._churned_pair()
        with pytest.raises(ValueError, match="strict=False"):
            compare_assignments(before, after)

    def test_reports_joined_and_departed(self):
        before, after = self._churned_pair()
        comparison = compare_assignments(before, after, strict=False)
        assert comparison.joined == ("w_new", "w_new2")
        assert comparison.departed == ("w_gone",)

    def test_deltas_cover_exactly_the_intersection(self):
        before, after = self._churned_pair()
        comparison = compare_assignments(before, after, strict=False)
        assert [d.worker_id for d in comparison.deltas] == ["w_stay"]
        [delta] = comparison.losers
        assert delta.worker_id == "w_stay"
        assert delta.delta == pytest.approx(
            delta.payoff_b - delta.payoff_a
        )

    def test_matching_populations_report_no_churn(self, assignment):
        comparison = compare_assignments(assignment, assignment, strict=False)
        assert comparison.joined == ()
        assert comparison.departed == ()
        assert len(comparison.deltas) == 3

    def test_format_mentions_population_change(self):
        before, after = self._churned_pair()
        text = compare_assignments(before, after, strict=False).format()
        assert "population:" in text
        assert "+2 joined" in text and "-1 departed" in text


class TestDecomposition:
    def test_mean_contribution_equals_pdif(self, assignment):
        decomposition = decompose_fairness(assignment)
        contributions = [s.contribution for s in decomposition.shares]
        mean = sum(contributions) / len(contributions)
        assert mean == pytest.approx(assignment.payoff_difference)

    def test_sides(self, assignment):
        decomposition = decompose_fairness(assignment)
        sides = {s.worker_id: s.side for s in decomposition.shares}
        assert sides["w_rich"] == "ahead"
        assert sides["w_idle"] == "behind"

    def test_envy_guilt_match_iau_terms(self, assignment):
        # envy/guilt are MP/(n-1) and LP/(n-1): feeding them back through
        # the IAU formula must reproduce InequityAversion.utility.
        from repro.core.fairness import InequityAversion

        model = InequityAversion(0.5, 0.5)
        payoffs = assignment.payoffs
        decomposition = decompose_fairness(assignment)
        for idx, share in enumerate(decomposition.shares):
            expected = model.utility(idx, payoffs)
            reconstructed = share.payoff - (0.5 * share.envy + 0.5 * share.guilt)
            assert reconstructed == pytest.approx(expected)

    def test_most_unequal(self, assignment):
        decomposition = decompose_fairness(assignment)
        top = decomposition.most_unequal(1)[0]
        assert top.worker_id in {"w_rich", "w_idle"}

    def test_single_worker(self):
        single = Assignment([WorkerAssignment(make_worker("only", 0, 0))])
        decomposition = decompose_fairness(single)
        assert decomposition.shares[0].contribution == 0.0

    def test_format(self, assignment):
        text = decompose_fairness(assignment).format()
        assert "P_dif=" in text and "[ahead]" in text
