"""Crash recovery for the equity ledger: journal replay is bit-identical.

The ledger's determinism contract (``repro.equity.ledger``) says a world
recovered from its write-ahead journal carries *exactly* the ledger the
crashed process had — same cumulative/balance bits, same rolling window,
same fingerprint.  Two layers prove it:

* in-process: run equity-mode rounds against a journaled world, replay
  the journal offline, and compare ledgers via their ``float.hex``
  fingerprints (also that the recovered world then *dispatches*
  identically to the live one);
* subprocess: SIGKILL a real ``python -m repro serve --equity`` mid-run
  (no shutdown hook, no flush) and assert the restarted service reports
  the same world fingerprint — which includes the ``equity.*`` items —
  and the same ledger over ``GET /equity``.
"""

import os
import subprocess
import sys
import time
from pathlib import Path

from repro.games.fgt import FGTSolver
from repro.service import DispatchClient, DispatchEngine, WorldState
from repro.service.journal import WorldJournal

from tests.service.conftest import make_world, task

REPO_ROOT = Path(__file__).resolve().parents[2]


def _journaled_equity_world(path):
    """A fresh two-center world journaling to ``path`` with equity on."""
    state = make_world()
    state.attach_journal(WorldJournal(path))
    state.enable_equity(decay=0.9, window=8)
    return state


def _run_rounds(state, rounds, seed=3):
    """Dispatch ``rounds`` equity-mode rounds, feeding fresh tasks between."""
    engine = DispatchEngine(
        state, FGTSolver(epsilon=0.8), epsilon=0.8, seed=seed, equity_mode=True
    )
    for index in range(rounds):
        accepted, rejected = state.add_tasks(
            [
                task(f"r{index}-x", "a1", state.now + 1.5),
                task(f"r{index}-y", "b1", state.now + 1.5),
            ]
        )
        assert len(accepted) == 2 and not rejected
        engine.dispatch(advance_hours=0.2)
    return engine


class TestLedgerJournalReplay:
    def test_replay_reproduces_ledger_bit_identically(self, tmp_path):
        journal = tmp_path / "world.jsonl"
        state = _journaled_equity_world(journal)
        _run_rounds(state, rounds=4)
        ledger = state.equity
        assert ledger is not None and ledger.rounds == 4

        recovered = WorldState.recover(journal, resume=False)
        assert recovered.equity is not None
        # Fingerprints render floats via float.hex: equality is bit-equality.
        assert list(recovered.equity.fingerprint_items()) == list(
            ledger.fingerprint_items()
        )
        assert recovered.equity == ledger
        assert recovered.fingerprint() == state.fingerprint()
        assert recovered.version == state.version

    def test_recovered_world_dispatches_identically_to_live(self, tmp_path):
        journal = tmp_path / "world.jsonl"
        live = _journaled_equity_world(journal)
        _run_rounds(live, rounds=3)

        recovered = WorldState.recover(journal, resume=False)

        # Fresh engines with the same seed on both worlds: the recovered
        # world must be operationally indistinguishable from the live one,
        # ledger-weighted IAU included.
        for state in (live, recovered):
            state.add_tasks(
                [
                    task("cont-x", "a2", state.now + 1.5),
                    task("cont-y", "a3", state.now + 1.5),
                ]
            )
        results = []
        for state in (live, recovered):
            engine = DispatchEngine(
                state,
                FGTSolver(epsilon=0.8),
                epsilon=0.8,
                seed=11,
                equity_mode=True,
            )
            results.append(engine.dispatch(advance_hours=0.2))
        assert results[0].payoffs == results[1].payoffs
        assert results[0].rolling_gini == results[1].rolling_gini
        assert live.fingerprint() == recovered.fingerprint()

    def test_recovering_twice_is_deterministic(self, tmp_path):
        journal = tmp_path / "world.jsonl"
        state = _journaled_equity_world(journal)
        _run_rounds(state, rounds=3)

        first = WorldState.recover(journal, resume=False)
        second = WorldState.recover(journal, resume=False)
        assert first.equity == second.equity
        assert first.fingerprint() == second.fingerprint()


def _serve_equity(tmp_path, tag, journal):
    """Launch ``python -m repro serve --equity``; return (proc, client)."""
    port_file = tmp_path / f"port-{tag}.txt"
    env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
    env.pop("REPRO_FAULTS", None)
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", "0",
            "--port-file", str(port_file),
            "--journal", str(journal),
            "--equity",
            "--equity-window", "8",
            "--epsilon", "0.8",
            "--seed", "0",
            "--tasks", "24",
            "--workers", "6",
            "--delivery-points", "10",
        ],
        cwd=REPO_ROOT,
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            out = proc.stdout.read() if proc.stdout else ""
            raise AssertionError(f"serve died before binding:\n{out}")
        if port_file.exists() and port_file.read_text().strip():
            break
        time.sleep(0.05)
    else:
        proc.kill()
        raise AssertionError("serve never wrote its port file")
    port = int(port_file.read_text())
    client = DispatchClient(f"http://127.0.0.1:{port}", timeout=5.0)
    client.wait_healthy(timeout=15.0)
    return proc, client


class TestSigkillWithEquity:
    def test_sigkill_recovers_ledger_bit_identically(self, tmp_path):
        journal = tmp_path / "world.jsonl"

        proc, client = _serve_equity(tmp_path, "first", journal)
        try:
            first = client.dispatch(advance_hours=0.05)
            assert first["assigned_tasks"] > 0
            assert first["equity"]["mode"] is True
            client.dispatch(advance_hours=0.05)
            before = client.equity()
            health = client.health()
            fingerprint = health["world_fingerprint"]
            assert before["rounds"] == 2
            assert health["equity"]["rounds"] == 2
        finally:
            proc.kill()  # SIGKILL: no graceful shutdown, no final flush
            proc.wait(timeout=10.0)

        # Offline replay already carries the exact ledger: the world
        # fingerprint includes every equity.* item in float.hex.
        offline = WorldState.recover(journal, resume=False)
        assert offline.equity is not None
        assert offline.equity.rounds == 2
        assert offline.fingerprint() == fingerprint
        assert offline.equity.baselines() == before["cumulative"]

        # A restarted --equity serve resumes the same ledger and keeps
        # recording into it.
        proc, client = _serve_equity(tmp_path, "second", journal)
        try:
            assert client.health()["world_fingerprint"] == fingerprint
            after = client.equity()
            assert after["rounds"] == 2
            assert after["cumulative"] == before["cumulative"]
            client.dispatch(advance_hours=0.05)
            assert client.equity()["rounds"] == 3
            client.shutdown()
            proc.wait(timeout=15.0)
            assert proc.returncode == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10.0)
