"""Shard crash-recovery: SIGKILL, respawn, journal replay, torn tails.

The hard gate of the supervised pool (``docs/fault_tolerance.md``): a
shard process may die at any moment — chaos-killed before a round, OS-
killed between rounds, or mid-append leaving a torn journal line — and
the pool must respawn it, replay its segment, and end bit-identical to a
run where nothing ever died.  "Identical" here is literal: every round
record and the facade fingerprint are compared field by field.

All arms set ``solve_deadline_s`` so an inherited ``REPRO_FAULTS`` puts
every engine on the same fault-tolerant ladder.
"""

from __future__ import annotations

import os
import signal
import time

import pytest

from repro.baselines.mpta import MPTASolver
from repro.geo.travel import TravelModel
from repro.service.faults import FaultPlan, tear_journal_tail
from repro.service.shards import ShardedDispatchEngine

from tests.conftest import make_worker
from tests.service.conftest import seed_tasks, two_center_layout

ROUND_KEYS = (
    "round",
    "now",
    "assigned_tasks",
    "assignments",
    "payoffs",
    "payoff_difference",
    "average_payoff",
    "pending_tasks",
)


def make_pool(journal_dir, faults=None) -> ShardedDispatchEngine:
    return ShardedDispatchEngine(
        two_center_layout(),
        MPTASolver(),
        travel=TravelModel(),
        shards=2,
        seed=7,
        solve_deadline_s=30.0,
        heartbeat_timeout_s=5.0,
        faults=faults,
        journal_dir=journal_dir,
        journal_fsync=False,
    )


def seed_pool(engine: ShardedDispatchEngine) -> None:
    engine.state.add_workers(
        [
            make_worker("wa1", 0.1, 0.0, max_dp=2, center_id="A"),
            make_worker("wa2", -0.2, 0.1, max_dp=2, center_id="A"),
            make_worker("wb1", 10.1, 0.0, max_dp=2, center_id="B"),
        ]
    )
    engine.state.add_tasks(seed_tasks())


def run_rounds(engine: ShardedDispatchEngine, rounds: int):
    return [
        engine.dispatch(advance_hours=0.25).as_dict() for _ in range(rounds)
    ]


def assert_rounds_equal(want, got):
    assert len(want) == len(got)
    for index, (a, b) in enumerate(zip(want, got)):
        for key in ROUND_KEYS:
            assert a[key] == b[key], (index, key)


class TestKillAndRecover:
    """A murdered shard must come back and change nothing."""

    def test_chaos_kill_is_bit_identical(self, tmp_path):
        clean = make_pool(tmp_path / "clean")
        try:
            seed_pool(clean)
            want = run_rounds(clean, 4)
            clean_fp = clean.state.fingerprint()
        finally:
            clean.begin_drain()
            clean.drain()

        chaos = make_pool(
            tmp_path / "chaos",
            faults=FaultPlan(shard_kill_round=2, shard_kill_index=0),
        )
        try:
            seed_pool(chaos)
            got = run_rounds(chaos, 4)
            chaos_fp = chaos.state.fingerprint()
            respawns = sum(
                h["respawns"] for h in chaos.shard_health().values()
            )
        finally:
            chaos.begin_drain()
            chaos.drain()

        assert respawns >= 1
        assert_rounds_equal(want, got)
        assert chaos_fp == clean_fp

    def test_os_sigkill_between_rounds_is_bit_identical(self, tmp_path):
        clean = make_pool(tmp_path / "clean")
        try:
            seed_pool(clean)
            want = run_rounds(clean, 4)
            clean_fp = clean.state.fingerprint()
        finally:
            clean.begin_drain()
            clean.drain()

        victim = make_pool(tmp_path / "victim")
        try:
            seed_pool(victim)
            got = run_rounds(victim, 2)
            pid = victim.shard_health()["1"]["pid"]
            os.kill(pid, signal.SIGKILL)
            # The next dispatch finds the corpse, respawns, replays the
            # segment, and re-drives the round on the fresh incarnation.
            got += run_rounds(victim, 2)
            victim_fp = victim.state.fingerprint()
            respawns = sum(
                h["respawns"] for h in victim.shard_health().values()
            )
        finally:
            victim.begin_drain()
            victim.drain()

        assert respawns >= 1
        assert_rounds_equal(want, got)
        assert victim_fp == clean_fp


class TestJournalSegments:
    """Per-shard segments must rebuild the partition exactly."""

    def test_reboot_from_segments_continues_identically(self, tmp_path):
        reference = make_pool(tmp_path / "ref")
        try:
            seed_pool(reference)
            want = run_rounds(reference, 5)
            ref_fp = reference.state.fingerprint()
        finally:
            reference.begin_drain()
            reference.drain()

        first = make_pool(tmp_path / "reboot")
        try:
            seed_pool(first)
            got = run_rounds(first, 3)
        finally:
            first.begin_drain()
            first.drain()

        second = make_pool(tmp_path / "reboot")
        try:
            assert second.rounds_dispatched == 3  # resumed, not reset
            got += run_rounds(second, 2)
            second_fp = second.state.fingerprint()
        finally:
            second.begin_drain()
            second.drain()

        assert_rounds_equal(want, got)
        assert second_fp == ref_fp

    def test_torn_tail_is_replayed_at_boot(self, tmp_path):
        reference = make_pool(tmp_path / "ref")
        try:
            seed_pool(reference)
            want = run_rounds(reference, 5)
            ref_fp = reference.state.fingerprint()
        finally:
            reference.begin_drain()
            reference.drain()

        torn = make_pool(tmp_path / "torn")
        try:
            seed_pool(torn)
            got = run_rounds(torn, 3)
        finally:
            torn.begin_drain()
            torn.drain()

        # Simulate a crash mid-append: shard 0's final shard_round record
        # becomes a torn line that recovery must drop, leaving the shard
        # one round behind its peer at the next boot.
        tear_journal_tail(tmp_path / "torn" / "shard-00.jsonl")

        recovered = make_pool(tmp_path / "torn")
        try:
            got += run_rounds(recovered, 2)
            recovered_fp = recovered.state.fingerprint()
        finally:
            recovered.begin_drain()
            recovered.drain()

        assert_rounds_equal(want, got)
        assert recovered_fp == ref_fp

    def test_segment_behind_by_two_rounds_is_refused(self, tmp_path):
        pool = make_pool(tmp_path / "damaged")
        try:
            seed_pool(pool)
            run_rounds(pool, 4)
        finally:
            pool.begin_drain()
            pool.drain()

        # Drop the final two complete records — damage a torn tail can
        # never cause (each append lands before the next begins), so the
        # boot catch-up must refuse rather than silently skip a round.
        segment = tmp_path / "damaged" / "shard-00.jsonl"
        lines = segment.read_bytes().splitlines(keepends=True)
        segment.write_bytes(b"".join(lines[:-2]))

        with pytest.raises(RuntimeError, match="behind its peers"):
            make_pool(tmp_path / "damaged")


class TestChaosGate:
    """The degradation ladder is flagged, never silent."""

    def test_unrevivable_shard_is_flagged_skip(self, tmp_path):
        # When a shard cannot be revived mid-round, the merged record
        # must flag its centers on the terminal "skip" rung — degraded
        # dispatch is visible in the round record, never silent.
        from repro.service.shards import ShardFailed

        pool = make_pool(tmp_path / "flagged")
        try:
            seed_pool(pool)
            b_shard = next(
                sid
                for sid in pool.shard_ids
                if "B" in pool.centers_of(sid)
            )
            supervisor = pool.supervisor
            original = supervisor.call

            def failing_call(sid, op, **payload):
                if sid == b_shard and op == "solve_round":
                    raise ShardFailed(f"shard {sid} is gone for good")
                return original(sid, op, **payload)

            supervisor.call = failing_call
            try:
                record = pool.dispatch(advance_hours=0.25)
            finally:
                supervisor.call = original
            assert record.degraded.get("B") == "skip"
            assert record.degraded.get("A") == "primary"
            assert all(wid.startswith("wa") for wid in record.payoffs)
        finally:
            pool.begin_drain()
            pool.drain()
