"""Tests for repro.service.engine (micro-batch dispatch rounds).

Includes the subsystem's two acceptance criteria: a service round over a
frozen snapshot is bit-identical to an offline ``run_algorithms`` FGT solve
of that snapshot, and warm-cache rounds under churn are bit-identical to
cold-cache rounds while unchanged centers produce cache hits.
"""

import pytest

from repro.baselines.gta import GTASolver
from repro.core.exceptions import InvariantViolation
from repro.experiments.runner import AlgorithmSpec, run_algorithms
from repro.games.fgt import FGTSolver
from repro.parallel import solve_instance
from repro.service.engine import DispatchEngine

from tests.service.conftest import make_world, task


def _engine(seed=11, **kwargs):
    kwargs.setdefault("epsilon", 0.8)
    return DispatchEngine(
        make_world(), FGTSolver(epsilon=kwargs["epsilon"]), seed=seed, **kwargs
    )


class TestOfflineFidelity:
    """Acceptance: service rounds replay exactly as offline solves."""

    def test_round_matches_run_algorithms_bit_for_bit(self):
        engine = _engine(seed=11)
        snapshot = engine.state.snapshot()
        offline = run_algorithms(
            snapshot.instance(),
            [AlgorithmSpec("FGT", lambda eps: FGTSolver(epsilon=eps))],
            epsilon=0.8,
            seed=engine.round_seed(0),
        )[0]
        result = engine.dispatch()
        assert result.payoff_difference == offline.payoff_difference  # Eq. 2
        assert result.average_payoff == offline.average_payoff
        assert sorted(result.payoffs.values()) == sorted(offline.payoffs)

    def test_round_routes_match_solve_instance(self):
        engine = _engine(seed=11)
        snapshot = engine.state.snapshot()
        solution = solve_instance(
            snapshot.instance(),
            FGTSolver(epsilon=0.8),
            epsilon=0.8,
            seed=engine.round_seed(0),
            seed_stream="FGT",  # the engine passes solver.name
        )
        result = engine.dispatch()
        for center_id, assignment in solution.assignments.items():
            assert result.assignments[center_id] == dict(assignment.as_mapping())

    def test_round_seed_is_reproducible(self):
        assert _engine(seed=3).round_seed(5) == _engine(seed=3).round_seed(5)
        assert _engine(seed=3).round_seed(5) != _engine(seed=4).round_seed(5)
        assert _engine(seed=3).round_seed(5) != _engine(seed=3).round_seed(6)

    def test_identical_engines_dispatch_identically(self):
        a = _engine(seed=7).dispatch()
        b = _engine(seed=7).dispatch()
        assert a.payoffs == b.payoffs
        assert a.assignments == b.assignments
        assert a.payoff_difference == b.payoff_difference


class TestWarmCache:
    """Acceptance: churn + warm cache stays bit-identical to cold cache."""

    @staticmethod
    def _drive(engine, cold=False):
        """Preview, churn one center, preview again, then commit."""
        results = []
        for churn in (None, [task("extra", "a1", 1.3)], None):
            if churn:
                engine.state.add_tasks(churn)
            if cold:
                engine.cache.clear()
            results.append(engine.dispatch(commit=False))
        results.append(engine.dispatch())
        return results

    def test_hits_on_unchanged_centers_results_identical(self):
        warm = _engine(seed=5)
        warm_rounds = self._drive(warm)
        cold = _engine(seed=5)
        cold_rounds = self._drive(cold, cold=True)

        # Round 1: only A churned, so B must be served from cache.
        assert warm_rounds[1].cache_hits == 1
        assert warm_rounds[1].cache_misses == 1
        # Rounds 2-3: nothing changed since round 1 -> all hits.
        assert warm_rounds[2].cache_hits == 2 and warm_rounds[2].cache_misses == 0
        assert warm_rounds[3].cache_hits == 2 and warm_rounds[3].cache_misses == 0
        assert cold_rounds[1].cache_hits == 0  # the control really is cold

        for w, c in zip(warm_rounds, cold_rounds):
            assert w.payoffs == c.payoffs
            assert w.assignments == c.assignments
            assert w.payoff_difference == c.payoff_difference
        assert warm.state.worker_stats() == cold.state.worker_stats()
        assert warm.state.pending_task_count == cold.state.pending_task_count

    def test_clock_advance_invalidates(self):
        engine = _engine(seed=5)
        engine.dispatch(commit=False)
        moved = engine.dispatch(advance_hours=0.05, commit=False)
        assert moved.cache_misses == 2 and moved.cache_hits == 0


class TestDispatchRounds:
    def test_commit_consumes_tasks_and_busies_workers(self):
        engine = _engine(seed=0)
        result = engine.dispatch()
        assert result.committed
        assert result.assigned_tasks > 0
        assert engine.state.pending_task_count == 6 - result.assigned_tasks
        assert result.available_workers < 3

    def test_dry_run_leaves_world_untouched(self):
        engine = _engine(seed=0)
        version = engine.state.version
        result = engine.dispatch(commit=False)
        assert not result.committed and result.assigned_tasks == 0
        assert engine.state.version == version
        assert engine.state.pending_task_count == 6
        assert engine.last_committed is None

    def test_expiry_and_advance_are_applied(self):
        engine = _engine(seed=0)
        engine.state.add_tasks([task("doomed", "a1", 0.3)])
        result = engine.dispatch(advance_hours=0.5, commit=False)
        assert result.now == 0.5
        assert result.expired_tasks == 1

    def test_empty_world_round(self):
        engine = DispatchEngine(
            make_world(with_tasks=False), GTASolver(), seed=0
        )
        result = engine.dispatch()
        assert result.center_ids == ()
        assert result.assigned_tasks == 0
        assert result.payoff_difference == 0.0
        assert result.payoffs == {}

    def test_verify_checks_every_center(self):
        engine = _engine(seed=2, verify=True)
        result = engine.dispatch()
        assert result.verified_centers == len(result.center_ids) > 0

    def test_failing_round_propagates_not_swallowed(self):
        # The engine surfaces round failures (the API layer maps them to
        # HTTP 500); nothing may be committed from a failed round.
        engine = _engine(seed=2)
        engine.state.commit = lambda snapshot, assignments: (_ for _ in ()).throw(
            InvariantViolation("test.sabotage", "boom")
        )
        with pytest.raises(InvariantViolation):
            engine.dispatch()
        assert engine.last_committed is None

    def test_n_jobs_matches_serial(self):
        serial = _engine(seed=9, n_jobs=1).dispatch()
        parallel = _engine(seed=9, n_jobs=2).dispatch()
        assert serial.payoffs == parallel.payoffs
        assert serial.assignments == parallel.assignments

    def test_history_is_bounded_and_ordered(self):
        engine = DispatchEngine(
            make_world(with_tasks=False), GTASolver(), seed=0, history_limit=2
        )
        for _ in range(4):
            engine.dispatch(commit=False)
        history = engine.history
        assert [r.round_index for r in history] == [2, 3]
        assert engine.rounds_dispatched == 4

    def test_round_result_as_dict_is_json_shaped(self):
        result = _engine(seed=0).dispatch()
        payload = result.as_dict()
        assert payload["round"] == 0
        assert payload["committed"] is True
        assert set(payload["cache"]) == {"hits", "misses"}
        assert isinstance(payload["assignments"], dict)

    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="n_jobs"):
            DispatchEngine(make_world(), GTASolver(), n_jobs=0)
        with pytest.raises(ValueError, match="history_limit"):
            DispatchEngine(make_world(), GTASolver(), history_limit=0)

    def test_drain_returns_when_idle(self):
        _engine(seed=0).drain()  # must not deadlock


class TestEquityColdStartGate:
    """All-equal ledger baselines must not feed the amplified game.

    With equal baselines the effective-payoff differences reduce to the
    per-round ones, so the amplified IAU (beta' > 1) carries no
    cross-round signal — and on payoff-dispersed worlds its all-null
    Nash equilibrium swallows the whole fleet (every worker's guilt
    exceeds its surplus once the others idle).  The engine therefore
    solves those rounds with plain per-round IAU.
    """

    def _gm_world(self):
        from repro.datasets.gmission import GMissionConfig, generate_gmission_like
        from repro.service.state import WorldState

        instance = generate_gmission_like(
            GMissionConfig(n_tasks=30, n_workers=6, n_delivery_points=12),
            seed=0,
        )
        state = WorldState(instance.centers, travel=instance.travel)
        state.add_workers(instance.workers)
        state.add_tasks(
            [
                {
                    "task_id": t.task_id,
                    "dp_id": t.delivery_point_id,
                    "expiry": t.expiry,
                    "reward": t.reward,
                }
                for c in instance.centers
                for t in c.tasks
            ]
        )
        return state

    def test_cold_start_round_matches_plain_engine(self):
        plain = DispatchEngine(
            make_world(), FGTSolver(epsilon=0.8), epsilon=0.8, seed=5
        )
        world = make_world()
        world.enable_equity()
        equity = DispatchEngine(
            world, FGTSolver(epsilon=0.8), epsilon=0.8, seed=5, equity_mode=True
        )
        assert equity.dispatch().payoffs == plain.dispatch().payoffs

    def test_cold_start_does_not_collapse_dispersed_world(self):
        # Regression: without the gate this exact world dispatches zero
        # tasks forever (all-zero rounds keep the ledger all-equal).
        state = self._gm_world()
        state.enable_equity()
        engine = DispatchEngine(
            state, FGTSolver(epsilon=0.8), epsilon=0.8, seed=0, equity_mode=True
        )
        first = engine.dispatch(advance_hours=0.1)
        assert first.assigned_tasks > 0

    def test_all_idle_history_keeps_the_gate_closed(self):
        world = make_world(with_tasks=False)
        world.enable_equity()
        equity = DispatchEngine(
            world, FGTSolver(epsilon=0.8), epsilon=0.8, seed=5, equity_mode=True
        )
        for _ in range(3):
            assert equity.dispatch().assigned_tasks == 0
        # Three recorded all-idle rounds leave baselines equal (all 0.0);
        # the first round with real work must still assign like a plain
        # engine rather than deadlock in the amplified null equilibrium.
        plain_world = make_world(with_tasks=False)
        plain = DispatchEngine(
            plain_world, FGTSolver(epsilon=0.8), epsilon=0.8, seed=5
        )
        for _ in range(3):
            plain.dispatch()
        from tests.service.conftest import seed_tasks

        world.add_tasks(seed_tasks())
        plain_world.add_tasks(seed_tasks())
        assert equity.dispatch().payoffs == plain.dispatch().payoffs
