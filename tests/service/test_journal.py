"""Tests for repro.service.journal and the WorldState write-ahead log.

Covers the ISSUE's durability edge cases: CRC validation, torn final
records (forgiven), torn middle records (fatal), duplicate-replay
idempotency, and the snapshot-compaction round trip compared against the
live world's content fingerprint.
"""

import json
import zlib

import pytest

from repro.service.faults import tear_journal_tail
from repro.service.journal import (
    JournalCorruption,
    JournalRecord,
    WorldJournal,
)
from repro.service.state import WorldState

from tests.service.conftest import make_world, seed_tasks, task


def _journaled_world(path, **journal_kwargs):
    """A fresh two-center world (no tasks) logging to ``path``."""
    state = make_world(with_tasks=False)
    state.attach_journal(WorldJournal(path, **journal_kwargs))
    return state


def _drive(state):
    """A deterministic op sequence touching every journal record kind."""
    accepted, rejected = state.add_tasks(seed_tasks())
    assert len(accepted) == 6 and not rejected
    state.advance(0.25)
    state.expire()
    result = state.snapshot()
    return result


class TestWireFormat:
    """Low-level record encoding: CRC, seq, torn-tail tolerance."""

    def test_append_read_round_trip(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with WorldJournal(path) as journal:
            journal.append("genesis", {"a": 1})
            journal.append("tasks", {"ids": ["t1", "t2"]})
        records, torn, intact_end = WorldJournal.read(path)
        assert torn == 0
        assert intact_end == path.stat().st_size
        assert records == [
            JournalRecord(0, "genesis", {"a": 1}),
            JournalRecord(1, "tasks", {"ids": ["t1", "t2"]}),
        ]

    def test_crc_mismatch_is_corruption(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with WorldJournal(path) as journal:
            journal.append("genesis", {})
            journal.append("advance", {"hours": 1.0})
        lines = path.read_text().splitlines(keepends=True)
        # Flip one payload byte of the FIRST record; an intact record
        # follows, so this cannot be forgiven as a torn tail.
        lines[0] = lines[0].replace("genesis", "genesiS", 1)
        path.write_text("".join(lines))
        with pytest.raises(JournalCorruption):
            WorldJournal.read(path)

    def test_torn_final_record_is_dropped(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with WorldJournal(path) as journal:
            journal.append("genesis", {})
            journal.append("advance", {"hours": 1.0})
        tear_journal_tail(path)
        records, torn, _ = WorldJournal.read(path)
        assert torn == 1
        assert [r.kind for r in records] == ["genesis"]

    def test_intact_end_truncation_removes_torn_tail(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with WorldJournal(path) as journal:
            journal.append("genesis", {})
            journal.append("advance", {"hours": 1.0})
        tear_journal_tail(path)
        _, torn, intact_end = WorldJournal.read(path)
        assert torn == 1
        assert WorldJournal.truncate_to(path, intact_end) > 0
        # The truncated journal ends cleanly at the last intact record.
        records, torn, end_after = WorldJournal.read(path)
        assert torn == 0
        assert [r.kind for r in records] == ["genesis"]
        assert end_after == intact_end == path.stat().st_size
        assert WorldJournal.truncate_to(path, intact_end) == 0  # idempotent

    def test_unterminated_crc_valid_tail_is_torn(self, tmp_path):
        # A final line whose CRC validates but that lacks its newline was
        # never acknowledged durable (append writes the newline before
        # returning), and a resumed append would concatenate onto it — it
        # must be dropped as torn, not trusted as intact.
        path = tmp_path / "j.jsonl"
        with WorldJournal(path) as journal:
            journal.append("genesis", {})
            journal.append("advance", {"hours": 1.0})
        raw = path.read_bytes()
        path.write_bytes(raw[:-1])  # strip only the trailing newline
        records, torn, intact_end = WorldJournal.read(path)
        assert torn == 1
        assert [r.kind for r in records] == ["genesis"]
        assert intact_end < path.stat().st_size

    def test_forged_crc_on_middle_record_is_corruption(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with WorldJournal(path) as journal:
            journal.append("genesis", {})
            journal.append("advance", {"hours": 1.0})
            journal.append("advance", {"hours": 2.0})
        lines = path.read_text().splitlines(keepends=True)
        # Re-stamp a tampered middle payload with a *valid* CRC but a
        # non-JSON body: decode must still reject it.
        body = "not json at all"
        crc = zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF
        lines[1] = f"{crc:08x} {body}\n"
        path.write_text("".join(lines))
        with pytest.raises(JournalCorruption):
            WorldJournal.read(path)

    def test_rewrite_restarts_sequence(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = WorldJournal(path)
        journal.append("genesis", {})
        journal.append("advance", {"hours": 1.0})
        journal.rewrite([("genesis", {}), ("checkpoint", {"now": 1.0})])
        records, _, _ = WorldJournal.read(path)
        assert [r.seq for r in records] == [0, 1]
        assert journal.next_seq == 2
        journal.close()

    def test_should_compact_threshold(self, tmp_path):
        journal = WorldJournal(tmp_path / "j.jsonl", compact_every=3)
        assert not journal.should_compact()
        for k in range(3):
            journal.append("advance", {"hours": float(k)})
        assert journal.should_compact()
        journal.close()


class TestWorldStateDurability:
    """WorldState WAL + recovery: the crash-consistency contract."""

    def test_recover_reproduces_fingerprint(self, tmp_path):
        path = tmp_path / "world.jsonl"
        state = _journaled_world(path)
        _drive(state)
        recovered = WorldState.recover(path, resume=False)
        assert recovered.fingerprint() == state.fingerprint()
        assert recovered.version == state.version
        assert recovered.now == state.now

    def test_recover_after_commit(self, tmp_path):
        path = tmp_path / "world.jsonl"
        state = _journaled_world(path)
        snapshot = _drive(state)
        # Commit a real solve so route/removal records hit the journal.
        from repro.games.fgt import FGTSolver
        from repro.parallel import solve_instance

        solution = solve_instance(
            snapshot.instance(), FGTSolver(epsilon=0.8), epsilon=0.8, seed=5
        )
        assigned = state.commit(snapshot, solution.assignments)
        assert assigned > 0
        recovered = WorldState.recover(path, resume=False)
        assert recovered.fingerprint() == state.fingerprint()

    def test_torn_final_record_loses_only_last_op(self, tmp_path):
        path = tmp_path / "world.jsonl"
        state = _journaled_world(path)
        state.add_tasks(seed_tasks())
        reference = state.fingerprint()  # before the op that will tear
        state.advance(0.5)
        tear_journal_tail(path)
        recovered = WorldState.recover(path, resume=False)
        assert recovered.fingerprint() == reference

    def test_duplicate_records_replay_idempotently(self, tmp_path):
        path = tmp_path / "world.jsonl"
        state = _journaled_world(path)
        _drive(state)
        # Re-append the final line verbatim: same seq, same CRC.  Replay
        # must skip it instead of double-applying the op.
        lines = path.read_text().splitlines(keepends=True)
        with path.open("a") as fh:
            fh.write(lines[-1])
        recovered = WorldState.recover(path, resume=False)
        assert recovered.fingerprint() == state.fingerprint()
        assert recovered.version == state.version

    def test_compaction_round_trip_matches_live_fingerprint(self, tmp_path):
        path = tmp_path / "world.jsonl"
        state = _journaled_world(path)
        _drive(state)
        before = path.stat().st_size
        state.compact_journal()
        assert path.stat().st_size < before
        recovered = WorldState.recover(path, resume=False)
        assert recovered.fingerprint() == state.fingerprint()
        assert recovered.version == state.version
        # The compacted journal is exactly genesis + checkpoint.
        records, torn, _ = WorldJournal.read(path)
        assert torn == 0
        assert [r.kind for r in records] == ["genesis", "checkpoint"]

    def test_auto_compaction_keeps_recovery_exact(self, tmp_path):
        path = tmp_path / "world.jsonl"
        state = _journaled_world(path, compact_every=4)
        _drive(state)
        state.advance(0.1)
        state.advance(0.1)
        recovered = WorldState.recover(path, resume=False)
        assert recovered.fingerprint() == state.fingerprint()

    def test_recover_resume_after_tear_stays_recoverable(self, tmp_path):
        # REGRESSION: recover(resume=True) used to leave the torn tail in
        # place; the torn line has no newline, so the first post-recovery
        # append concatenated onto it and the *next* recovery raised
        # JournalCorruption (damage followed by intact records).
        path = tmp_path / "world.jsonl"
        state = _journaled_world(path)
        state.add_tasks(seed_tasks())
        state.advance(0.5)  # the record the tear will destroy
        tear_journal_tail(path)
        recovered = WorldState.recover(path)  # resume=True
        recovered.advance(0.25)  # first append after the torn-tail recovery
        recovered.add_tasks([task("late", "a1", 2.0)])
        second = WorldState.recover(path, resume=False)
        assert second.fingerprint() == recovered.fingerprint()
        assert second.now == recovered.now

    def test_recover_resume_survives_repeated_crashes(self, tmp_path):
        # Crash -> recover -> crash again: every cycle must stay
        # recoverable, losing only each cycle's torn record.
        path = tmp_path / "world.jsonl"
        state = _journaled_world(path)
        state.add_tasks(seed_tasks())
        for _ in range(3):
            state.advance(0.5)
            tear_journal_tail(path)
            state = WorldState.recover(path)
            state.advance(0.1)
        final = WorldState.recover(path, resume=False)
        assert final.fingerprint() == state.fingerprint()
        assert final.now == state.now

    def test_resumed_journal_continues_recoverably(self, tmp_path):
        path = tmp_path / "world.jsonl"
        state = _journaled_world(path)
        state.add_tasks(seed_tasks())
        # First recovery resumes journaling; further mutations must land
        # in the same journal and recover again bit-identically.
        recovered = WorldState.recover(path)
        assert recovered.journal is not None
        recovered.add_tasks([task("late", "a1", 2.0)])
        recovered.advance(0.25)
        second = WorldState.recover(path, resume=False)
        assert second.fingerprint() == recovered.fingerprint()

    def test_recover_rejects_empty_and_headless_journals(self, tmp_path):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        with pytest.raises(JournalCorruption):
            WorldState.recover(empty)
        headless = tmp_path / "headless.jsonl"
        body = json.dumps({"seq": 0, "kind": "advance", "data": {"hours": 1.0}})
        crc = zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF
        headless.write_text(f"{crc:08x} {body}\n")
        with pytest.raises(JournalCorruption):
            WorldState.recover(headless)
