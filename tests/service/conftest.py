"""Shared builders for the dispatch-service tests.

The layout is two well-separated centers so tests can churn one center
while proving the other's snapshot (and thus its cached catalog) is
untouched.  All helpers are plain functions, not fixtures, so a test can
build several *identical* fresh worlds (warm-vs-cold comparisons).
"""

from __future__ import annotations

from typing import Dict, List

from repro.geo.travel import TravelModel
from repro.service.state import WorldState

from tests.conftest import make_center, make_dp, make_worker


def two_center_layout():
    """Centers A (around the origin) and B (10 km east)."""
    a = make_center(
        [
            make_dp("a1", 1.0, 0.0),
            make_dp("a2", -1.0, 0.5),
            make_dp("a3", 0.5, 1.5),
        ],
        center_id="A",
    )
    b = make_center(
        [make_dp("b1", 11.0, 0.0), make_dp("b2", 9.5, 1.0)],
        center_id="B",
        x=10.0,
    )
    return a, b


def task(task_id: str, dp_id: str, expiry: float, reward: float = 1.0) -> Dict:
    """A task dict the way ``POST /tasks`` would carry it."""
    return {"task_id": task_id, "dp_id": dp_id, "expiry": expiry, "reward": reward}


def seed_tasks(now: float = 0.0) -> List[Dict]:
    """A reproducible initial queue touching both centers."""
    return [
        task("ta1", "a1", now + 1.2),
        task("ta2", "a1", now + 1.5),
        task("ta3", "a2", now + 1.0),
        task("ta4", "a3", now + 1.4),
        task("tb1", "b1", now + 1.2),
        task("tb2", "b2", now + 1.5),
    ]


def make_world(with_tasks: bool = True) -> WorldState:
    """A fresh two-center world; identical on every call."""
    state = WorldState(
        two_center_layout(),
        workers=[
            make_worker("wa1", 0.1, 0.0, max_dp=2, center_id="A"),
            make_worker("wa2", -0.2, 0.1, max_dp=2, center_id="A"),
            make_worker("wb1", 10.1, 0.0, max_dp=2, center_id="B"),
        ],
        travel=TravelModel(),  # paper speed: 5 km/h
    )
    if with_tasks:
        accepted, rejected = state.add_tasks(seed_tasks())
        assert len(accepted) == 6 and not rejected
    return state
