"""End-to-end tests for the HTTP API (server on an ephemeral port)."""

import json
import urllib.request

import pytest

from repro.games.fgt import FGTSolver
from repro.service import DispatchClient, DispatchEngine, DispatchServer, ServiceError

from tests.service.conftest import make_world, task


@pytest.fixture()
def server():
    engine = DispatchEngine(make_world(), FGTSolver(epsilon=0.8), epsilon=0.8, seed=0)
    with DispatchServer(engine, port=0) as srv:
        yield srv


@pytest.fixture()
def client(server):
    return DispatchClient(server.url, timeout=5.0)


class TestEndpoints:
    def test_healthz(self, client):
        health = client.health()
        assert health["status"] == "ok"
        assert health["pending_tasks"] == 6
        assert health["workers"] == 3
        assert health["algorithm"] == "FGT"
        assert health["epsilon"] == 0.8
        assert health["rounds"] == 0

    def test_submit_tasks_batch_and_rejections(self, client):
        response = client.submit_tasks(
            [task("x1", "a1", 2.0), task("x2", "nowhere", 2.0)]
        )
        assert response["accepted"] == ["x1"]
        assert response["rejected"][0]["id"] == "x2"
        assert response["pending_tasks"] == 7

    def test_submit_single_task_object(self, server, client):
        status = client._json("POST", "/tasks", task("solo", "b1", 2.0))
        assert status["accepted"] == ["solo"]

    def test_submit_workers(self, client):
        response = client.submit_workers(
            [{"worker_id": "new", "x": 9.9, "y": 0.1}]
        )
        assert response["accepted"] == ["new"]
        assert response["workers"] == 4

    def test_dispatch_commits_and_assignments_reflect_it(self, client):
        round_payload = client.dispatch()
        assert round_payload["round"] == 0
        assert round_payload["committed"] is True
        assert round_payload["assigned_tasks"] > 0
        last = client.assignments()
        assert last["round"]["round"] == 0
        assert last["round"]["assignments"] == round_payload["assignments"]
        busy = [w for w in last["workers"].values() if w["assignments"] > 0]
        assert busy

    def test_dry_run_dispatch(self, client):
        preview = client.dispatch(commit=False)
        assert preview["committed"] is False
        assert client.health()["pending_tasks"] == 6  # untouched

    def test_metrics_exposition(self, client):
        client.dispatch(commit=False)
        client.dispatch(commit=False)  # second round: unchanged -> cache hits
        text = client.metrics_text()
        assert "# TYPE repro_service_rounds counter" in text
        parsed = client.metrics()
        assert parsed["repro_service_rounds"] >= 2
        assert parsed["repro_service_catalog_cache_hits"] >= 2
        assert "repro_service_dispatch_seconds_sum" in parsed

    def test_metrics_content_type(self, server):
        with urllib.request.urlopen(f"{server.url}/metrics", timeout=5) as response:
            assert response.headers["Content-Type"].startswith("text/plain")


class TestErrorHandling:
    def test_unknown_path_404(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client._json("GET", "/nope")
        assert excinfo.value.status == 404

    def test_invalid_json_400(self, server):
        request = urllib.request.Request(
            f"{server.url}/tasks",
            data=b"{not json",
            method="POST",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=5)
        assert excinfo.value.code == 400

    def test_body_must_be_object(self, server):
        request = urllib.request.Request(
            f"{server.url}/tasks",
            data=json.dumps([1, 2]).encode(),
            method="POST",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=5)
        assert excinfo.value.code == 400

    def test_missing_batch_key_400(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client._json("POST", "/tasks", {"unrelated": 1})
        assert excinfo.value.status == 400

    def test_bad_dispatch_arguments_400(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.dispatch(advance_hours=-1.0)
        assert excinfo.value.status == 400
        with pytest.raises(ServiceError) as excinfo:
            client._json("POST", "/dispatch", {"commit": "yes"})
        assert excinfo.value.status == 400

    def test_service_survives_errors(self, client):
        with pytest.raises(ServiceError):
            client._json("GET", "/nope")
        assert client.health()["status"] == "ok"


class TestLifecycle:
    def test_shutdown_endpoint_is_graceful(self):
        engine = DispatchEngine(
            make_world(), FGTSolver(epsilon=0.8), epsilon=0.8, seed=1
        )
        server = DispatchServer(engine, port=0).start_background()
        client = DispatchClient(server.url, timeout=5.0)
        client.wait_healthy(timeout=5.0)
        client.dispatch()
        assert client.shutdown()["status"] == "shutting down"
        server.join(timeout=5.0)
        with pytest.raises((ServiceError, OSError)):
            client.health()
        server.stop()  # idempotent after /shutdown

    def test_context_manager_stops_cleanly(self):
        engine = DispatchEngine(make_world(), FGTSolver(epsilon=0.8), epsilon=0.8)
        with DispatchServer(engine, port=0) as server:
            url = server.url
            DispatchClient(url, timeout=5.0).wait_healthy(timeout=5.0)
        with pytest.raises((ServiceError, OSError)):
            DispatchClient(url, timeout=1.0).health()

    def test_ephemeral_port_bound(self, server):
        assert server.port > 0
        assert server.url.startswith("http://127.0.0.1:")


class TestSLOEndpoint:
    def test_slo_reports_default_objectives(self, client):
        client.dispatch(commit=False)
        payload = client.slo()
        by_name = {o["name"]: o for o in payload["objectives"]}
        assert {
            "round_latency",
            "center_deadline_hits",
            "primary_rung_rate",
            "journal_fsync_latency",
        } <= set(by_name)
        assert isinstance(payload["ok"], bool)
        assert payload["worst_burn"] >= 0.0
        latency = by_name["round_latency"]
        assert latency["events"] >= 1  # the dispatch above was observed
        assert latency["burn"] >= 0.0
        assert "p99" in latency["detail"]

    def test_healthz_carries_slo_summary(self, client):
        summary = client.health()["slo"]
        assert set(summary) == {"ok", "breached", "worst_burn"}


class TestTraceHeader:
    def test_server_echoes_caller_trace_id(self, server):
        caller = DispatchClient(server.url, timeout=5.0, trace_id="ab" * 8)
        caller.health()
        assert caller.last_trace_id == "ab" * 8

    def test_server_mints_trace_id_when_absent(self, client):
        client.health()
        assert client.last_trace_id
        int(client.last_trace_id, 16)  # generated ids are hex

    def test_request_spans_land_in_caller_trace(self, server):
        import time

        from repro.obs.tracer import MemoryTracer, set_tracing

        tracer = MemoryTracer()
        set_tracing(tracer)
        try:
            caller = DispatchClient(
                server.url, timeout=5.0, trace_id="cd" * 8
            )
            caller.dispatch(commit=False)
            # The request span emits just after the response bytes leave,
            # so give the handler thread a beat to exit the span.
            deadline = time.monotonic() + 2.0
            while time.monotonic() < deadline and not any(
                r["kind"] == "service.request" for r in tracer.records
            ):
                time.sleep(0.01)
        finally:
            set_tracing(None)
        requests = [
            r for r in tracer.records if r["kind"] == "service.request"
        ]
        assert requests and all(r["trace"] == "cd" * 8 for r in requests)
        [request] = [
            r for r in requests if r["endpoint"] == "/dispatch"
        ]
        rounds = [r for r in tracer.records if r["kind"] == "service.round"]
        assert rounds, "the round span must trace under the request"
        assert rounds[0]["trace"] == "cd" * 8
        assert rounds[0]["parent"] == request["span"]
