"""Service-level bit-identity of delta-maintained catalogs under churn.

The engine defaults to serving catalog-cache misses from an incrementally
refreshed :class:`~repro.vdps.delta.DeltaCatalog`.  These tests drive a
delta engine and a rebuild-per-miss control engine through identical churn
sequences and assert every round is bit-identical — payoffs, routes,
Equation 2 ``P_dif`` — including across a write-ahead-journal crash-recover
cycle with a persistent catalog store (warm restart), and under injected
chaos on the fault-tolerant ladder.
"""

import shutil

from repro.games.fgt import FGTSolver
from repro.obs.metrics import METRICS
from repro.service.engine import DispatchEngine
from repro.service.faults import FaultPlan
from repro.service.journal import WorldJournal
from repro.service.state import WorldState
from repro.vdps.store import CatalogStore

from tests.service.conftest import make_world, task


def _engine(seed=11, **kwargs):
    kwargs.setdefault("epsilon", 0.8)
    return DispatchEngine(
        make_world(), FGTSolver(epsilon=kwargs["epsilon"]), seed=seed, **kwargs
    )


def _churn_and_dispatch(engine):
    """A fixed churn script; returns the per-round comparable outcomes.

    Intermediate rounds use ``commit=False`` (planning mode) so every
    round re-solves the full worker set; each add touches one delivery
    point of a center, which keeps the churn under the delta catalog's
    ``rebuild_fraction`` and exercises the surgery path rather than the
    rebuild fallback.  The last round commits, so worker stats move too.
    """
    rounds = []
    rounds.append(engine.dispatch(commit=False))
    engine.state.add_tasks([task("extra1", "a1", 1.3)])
    rounds.append(engine.dispatch(commit=False))
    engine.state.add_tasks([task("extra2", "b2", 1.1)])
    rounds.append(engine.dispatch(commit=False))
    engine.state.add_tasks([task("extra3", "a3", 0.9)])
    rounds.append(engine.dispatch())
    return [
        (r.payoffs, r.assignments, r.payoff_difference, r.average_payoff)
        for r in rounds
    ]


class TestDeltaBitIdentity:
    def test_delta_engine_matches_rebuild_engine(self):
        before = METRICS.counter("catalog.delta_applies").value
        warm = _engine(seed=5)  # delta mode is the default
        warm_rounds = _churn_and_dispatch(warm)
        cold = _engine(seed=5, delta_catalog=False)
        cold_rounds = _churn_and_dispatch(cold)
        assert warm_rounds == cold_rounds
        assert warm.state.worker_stats() == cold.state.worker_stats()
        # The warm engine really served churned rounds by delta surgery.
        assert METRICS.counter("catalog.delta_applies").value > before

    def test_fault_tolerant_chaos_run_matches_rebuild_engine(self):
        """PR-5 chaos harness on top of delta catalogs: injected solver
        errors force retries (which invalidate delta state) and the ladder
        still produces exactly the rebuild engine's commits."""
        plan = "seed=3,error_rate=0.3"
        warm = _engine(
            seed=7, faults=FaultPlan.from_spec(plan), backoff_base_s=0.0
        )
        warm_rounds = _churn_and_dispatch(warm)
        cold = _engine(
            seed=7,
            faults=FaultPlan.from_spec(plan),
            backoff_base_s=0.0,
            delta_catalog=False,
        )
        cold_rounds = _churn_and_dispatch(cold)
        assert warm_rounds == cold_rounds


class TestCrashRecoverWarmStart:
    def _journaled_engine(self, journal_path, store, delta=True, seed=5):
        state = make_world(with_tasks=False)
        state.attach_journal(WorldJournal(journal_path))
        state.add_tasks(
            [
                task("ta1", "a1", 1.2),
                task("ta2", "a2", 1.0),
                task("tb1", "b1", 1.2),
            ]
        )
        return DispatchEngine(
            state,
            FGTSolver(epsilon=0.8),
            epsilon=0.8,
            seed=seed,
            delta_catalog=delta,
            catalog_store=store,
        )

    def test_recovered_engine_with_store_matches_cold_control(self, tmp_path):
        store_dir = tmp_path / "catalogs"
        journal = tmp_path / "world.jsonl"

        # Phase 1: run, churn, then drain (persists the delta catalogs).
        # Planning-mode rounds leave workers free, so the recovered world
        # still has solvable sub-problems after the journal replay.
        first = self._journaled_engine(journal, CatalogStore(store_dir))
        first.dispatch(commit=False)
        first.state.add_tasks([task("late", "a3", 1.4)])
        first.dispatch(commit=False)
        first.begin_drain()
        first.drain()
        assert list(store_dir.glob("*.catalog.pkl"))  # the store was written

        # Phase 2: "crash" — recover the world from the journal twice over
        # (two identical copies), once per arm.
        control_journal = tmp_path / "world-control.jsonl"
        shutil.copy(journal, control_journal)

        loads_before = METRICS.counter("catalog.delta_store_loads").value
        recovered = DispatchEngine(
            WorldState.recover(journal),
            FGTSolver(epsilon=0.8),
            epsilon=0.8,
            seed=99,
            delta_catalog=True,
            catalog_store=CatalogStore(store_dir),
        )
        control = DispatchEngine(
            WorldState.recover(control_journal),
            FGTSolver(epsilon=0.8),
            epsilon=0.8,
            seed=99,
            delta_catalog=False,
        )
        assert recovered.state.fingerprint() == control.state.fingerprint()

        outcomes = []
        for engine in (recovered, control):
            engine.state.add_tasks([task("post_crash", "b2", 1.2)])
            rounds = [
                engine.dispatch(commit=False),
                engine.dispatch(),
            ]
            outcomes.append(
                [
                    (r.payoffs, r.assignments, r.payoff_difference)
                    for r in rounds
                ]
            )
        assert outcomes[0] == outcomes[1]
        # The recovered engine really warm-started from the store.
        assert METRICS.counter("catalog.delta_store_loads").value > loads_before
