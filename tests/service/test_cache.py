"""Tests for repro.service.cache (snapshot-hash catalog caching)."""

from repro.obs.metrics import METRICS
from repro.service.cache import SnapshotCatalogCache
from repro.vdps.catalog import build_catalog

from tests.service.conftest import make_world, task


def _sub(state, center_id):
    snap = state.snapshot()
    (sub,) = [s for s in snap.subproblems if s.center.center_id == center_id]
    return sub, snap.fingerprints[center_id]


def _counters():
    return (
        METRICS.counter("service.catalog_cache.hits").value,
        METRICS.counter("service.catalog_cache.misses").value,
    )


class TestSnapshotCatalogCache:
    def test_same_fingerprint_hits_with_identical_catalog(self):
        state = make_world()
        sub, fp = _sub(state, "A")
        cache = SnapshotCatalogCache()
        hits0, misses0 = _counters()
        cold = cache.get(sub, fp, epsilon=None)
        warm = cache.get(sub, fp, epsilon=None)
        assert warm is cold  # the identical object, not a rebuild
        hits1, misses1 = _counters()
        assert (hits1 - hits0, misses1 - misses0) == (1, 1)
        assert len(cache) == 1

    def test_changed_fingerprint_rebuilds(self):
        state = make_world()
        sub, fp = _sub(state, "A")
        cache = SnapshotCatalogCache()
        cold = cache.get(sub, fp, epsilon=None)
        state.add_tasks([task("extra", "a1", 1.3)])
        sub2, fp2 = _sub(state, "A")
        assert fp2 != fp
        rebuilt = cache.get(sub2, fp2, epsilon=None)
        assert rebuilt is not cold
        assert len(cache) == 1  # the stale entry was replaced

    def test_changed_epsilon_rebuilds(self):
        state = make_world()
        sub, fp = _sub(state, "A")
        cache = SnapshotCatalogCache()
        wide = cache.get(sub, fp, epsilon=None)
        pruned = cache.get(sub, fp, epsilon=0.8)
        assert pruned is not wide

    def test_hit_catalog_matches_cold_build(self):
        # The fidelity claim: a hit serves exactly what a cold build yields.
        state = make_world()
        sub, fp = _sub(state, "B")
        cache = SnapshotCatalogCache()
        cache.get(sub, fp, epsilon=0.8)
        hit = cache.get(sub, fp, epsilon=0.8)
        fresh = build_catalog(sub, epsilon=0.8)
        assert hit.total_strategy_count == fresh.total_strategy_count
        for worker in sub.workers:
            hit_strats = hit.strategies(worker.worker_id)
            fresh_strats = fresh.strategies(worker.worker_id)
            assert [str(s) for s in hit_strats] == [str(s) for s in fresh_strats]

    def test_invalidate_and_clear(self):
        state = make_world()
        sub, fp = _sub(state, "A")
        cache = SnapshotCatalogCache()
        cache.get(sub, fp, epsilon=None)
        assert cache.invalidate("A") is True
        assert cache.invalidate("A") is False
        cache.get(sub, fp, epsilon=None)
        cache.clear()
        assert len(cache) == 0

    def test_build_time_recorded(self):
        state = make_world()
        sub, fp = _sub(state, "A")
        before = METRICS.histogram("service.catalog_build_seconds").count
        SnapshotCatalogCache().get(sub, fp, epsilon=None)
        assert METRICS.histogram("service.catalog_build_seconds").count == before + 1
