"""Tests for repro.service.state (the mutable service world)."""

import pytest

from repro.baselines.gta import GTASolver
from repro.geo.point import Point
from repro.parallel import solve_instance
from repro.service.state import WorldState, _fingerprint
from repro.sim.arrivals import TaskArrival

from tests.conftest import make_center, make_dp, make_worker
from tests.service.conftest import make_world, seed_tasks, task, two_center_layout


class TestConstruction:
    def test_requires_centers(self):
        with pytest.raises(ValueError, match="at least one"):
            WorldState([])

    def test_duplicate_center_rejected(self):
        a, _ = two_center_layout()
        with pytest.raises(ValueError, match="duplicate center"):
            WorldState([a, a])

    def test_duplicate_delivery_point_rejected(self):
        a = make_center([make_dp("p", 1, 0)], center_id="A")
        b = make_center([make_dp("p", 11, 0)], center_id="B", x=10.0)
        with pytest.raises(ValueError, match="duplicate delivery point"):
            WorldState([a, b])

    def test_center_without_points_rejected(self):
        with pytest.raises(ValueError, match="delivery points"):
            WorldState([make_center([], center_id="A")])

    def test_layout_tasks_are_stripped(self):
        # make_dp attaches a task to each point; the service ignores it,
        # mirroring DispatchSimulator (centers are layout only).
        state = make_world(with_tasks=False)
        assert state.pending_task_count == 0
        for center in state.centers:
            assert all(not dp.tasks for dp in center.delivery_points)

    def test_initial_worker_with_unknown_center_raises(self):
        with pytest.raises(ValueError, match="unknown center"):
            WorldState(
                two_center_layout(),
                workers=[make_worker("w", 0, 0, center_id="nope")],
            )


class TestAddTasks:
    def test_accepts_and_counts(self):
        state = make_world(with_tasks=False)
        accepted, rejected = state.add_tasks(seed_tasks())
        assert len(accepted) == 6 and rejected == []
        assert state.pending_task_count == 6

    def test_duplicate_id_rejected(self):
        state = make_world()
        accepted, rejected = state.add_tasks([task("ta1", "a1", 2.0)])
        assert accepted == []
        assert rejected[0].reason == "duplicate task id"

    def test_unknown_delivery_point_rejected(self):
        state = make_world(with_tasks=False)
        _, rejected = state.add_tasks([task("t", "nowhere", 2.0)])
        assert "unknown delivery point" in rejected[0].reason

    def test_expired_on_arrival_rejected(self):
        state = make_world(with_tasks=False)
        state.advance(1.0)
        _, rejected = state.add_tasks([task("t", "a1", 1.0)])  # expiry == now
        assert "not after now" in rejected[0].reason

    def test_expired_id_stays_burned(self):
        # A task id that ever entered the queue cannot be replayed, even
        # after the original expired and left.
        state = make_world(with_tasks=False)
        state.add_tasks([task("t", "a1", 0.5)])
        state.advance(1.0)
        assert state.expire() == ["t"]
        _, rejected = state.add_tasks([task("t", "a1", 5.0)])
        assert rejected[0].reason == "duplicate task id"

    def test_malformed_dict_rejected_not_raised(self):
        state = make_world(with_tasks=False)
        accepted, rejected = state.add_tasks([{"task_id": "t"}])  # no dp/expiry
        assert accepted == [] and len(rejected) == 1

    def test_accepts_task_arrival_entities(self):
        state = make_world(with_tasks=False)
        arrival = TaskArrival("t", "b1", arrival_time=0.0, expiry=2.0)
        accepted, _ = state.add_tasks([arrival])
        assert accepted == ["t"]

    def test_version_bumps_only_on_acceptance(self):
        state = make_world(with_tasks=False)
        before = state.version
        state.add_tasks([task("t", "nowhere", 2.0)])
        assert state.version == before
        state.add_tasks([task("t", "a1", 2.0)])
        assert state.version == before + 1


class TestAddWorkers:
    def test_accepts_dicts(self):
        state = make_world(with_tasks=False)
        accepted, rejected = state.add_workers(
            [{"worker_id": "w9", "x": 0.3, "y": 0.0, "center_id": "A"}]
        )
        assert accepted == ["w9"] and rejected == []
        assert state.worker_count == 4

    def test_nearest_center_attachment(self):
        state = make_world(with_tasks=False)
        state.add_workers([{"worker_id": "east", "x": 9.8, "y": 0.0}])
        assert state.worker_stats()["east"]["center_id"] == "B"

    def test_duplicate_and_unknown_center_rejected(self):
        state = make_world(with_tasks=False)
        _, rejected = state.add_workers(
            [
                {"worker_id": "wa1", "x": 0, "y": 0},
                {"worker_id": "w9", "x": 0, "y": 0, "center_id": "nope"},
            ]
        )
        reasons = {r.item_id: r.reason for r in rejected}
        assert reasons["wa1"] == "duplicate worker id"
        assert "unknown center" in reasons["w9"]

    def test_malformed_dict_rejected_not_raised(self):
        state = make_world(with_tasks=False)
        accepted, rejected = state.add_workers([{"worker_id": "w"}])
        assert accepted == [] and len(rejected) == 1


class TestClockAndExpiry:
    def test_advance_rejects_negative(self):
        with pytest.raises(ValueError, match="negative"):
            make_world(with_tasks=False).advance(-0.1)

    def test_expiry_at_boundary_is_inclusive(self):
        # expiry == now expires, matching the simulator's `expiry > now`
        # keep-filter at round boundaries.
        state = make_world(with_tasks=False)
        state.add_tasks([task("edge", "a1", 0.5), task("later", "a1", 0.6)])
        state.advance(0.5)
        assert state.expire() == ["edge"]
        assert state.pending_task_count == 1


class TestSnapshot:
    def test_relative_deadline_conversion(self):
        state = make_world(with_tasks=False)
        state.add_tasks([task("t", "a1", 1.5)])
        state.advance(0.25)
        snap = state.snapshot()
        (sub,) = snap.subproblems
        (spatial,) = sub.center.delivery_points[0].tasks
        assert spatial.expiry == pytest.approx(1.25)  # absolute -> relative

    def test_only_active_centers_appear(self):
        state = make_world(with_tasks=False)
        state.add_tasks([task("t", "a1", 1.5)])  # tasks only at A
        snap = state.snapshot()
        assert snap.center_ids == ["A"]
        assert snap.task_ids == {"A": ("t",)}

    def test_center_without_available_workers_skipped(self):
        state = make_world()
        snap = state.snapshot()
        assert snap.center_ids == ["A", "B"]
        # Send every B worker on a long route; B drops out of the snapshot
        # even though its tasks are still pending.
        solution = solve_instance(
            snap.instance(), GTASolver(), seed=0, catalogs=None
        )
        state.commit(snap, {"B": solution.assignments["B"]})
        assert state.snapshot().center_ids == ["A"]
        assert state.pending_task_count > 0

    def test_hopeless_tasks_excluded(self):
        # Remaining time not exceeding the center->dp travel time means no
        # worker could ever deliver (Definition 6): excluded, left to expire.
        state = make_world(with_tasks=False)
        # a1 is 1 km from A; at 5 km/h that is 0.2 h of travel.
        state.add_tasks([task("hopeless", "a1", 0.2), task("fine", "a1", 1.0)])
        snap = state.snapshot()
        assert snap.task_ids == {"A": ("fine",)}
        assert snap.pending_tasks == 2  # still queued, just not offered

    def test_empty_snapshot_has_no_instance(self):
        snap = make_world(with_tasks=False).snapshot()
        assert snap.subproblems == ()
        with pytest.raises(ValueError, match="empty snapshot"):
            snap.instance()

    def test_instance_round_trips_workers_and_centers(self):
        snap = make_world().snapshot()
        instance = snap.instance()
        assert [c.center_id for c in instance.centers] == ["A", "B"]
        assert len(instance.workers) == 3

    def test_counts(self):
        snap = make_world().snapshot()
        assert snap.pending_tasks == 6
        assert snap.available_workers == 3


class TestFingerprints:
    def test_stable_across_identical_snapshots(self):
        state = make_world()
        a = state.snapshot().fingerprints
        b = state.snapshot().fingerprints
        assert a == b
        assert make_world().snapshot().fingerprints == a  # world-independent

    def test_churn_moves_only_the_touched_center(self):
        state = make_world()
        before = state.snapshot().fingerprints
        state.add_tasks([task("extra", "a1", 1.3)])
        after = state.snapshot().fingerprints
        assert after["A"] != before["A"]
        assert after["B"] == before["B"]

    def test_clock_advance_moves_every_center(self):
        # Relative deadlines shift with the clock, so the catalogs of every
        # center with tasks become stale.
        state = make_world()
        before = state.snapshot().fingerprints
        state.advance(0.1)
        after = state.snapshot().fingerprints
        assert after["A"] != before["A"] and after["B"] != before["B"]

    def test_fingerprint_covers_workers(self):
        state = make_world()
        before = state.snapshot().fingerprints
        state.add_workers([{"worker_id": "w9", "x": 0.4, "y": 0.2, "center_id": "A"}])
        after = state.snapshot().fingerprints
        assert after["A"] != before["A"]
        assert after["B"] == before["B"]

    def test_direct_fingerprint_matches_snapshot(self):
        snap = make_world().snapshot()
        for sub in snap.subproblems:
            assert snap.fingerprints[sub.center.center_id] == _fingerprint(sub)


class TestCommit:
    def test_commit_applies_routes_like_the_simulator(self):
        state = make_world()
        snap = state.snapshot()
        solution = solve_instance(snap.instance(), GTASolver(), seed=0)
        assigned = state.commit(snap, solution.assignments)
        assert assigned > 0
        assert state.pending_task_count == 6 - assigned
        stats = state.worker_stats()
        routed = [s for s in stats.values() if s["assignments"] > 0]
        assert routed
        for s in routed:
            assert s["available_at"] > 0.0  # busy until the route completes
            assert s["earnings"] > 0.0

    def test_busy_worker_reappears_at_drop_off(self):
        state = make_world()
        snap = state.snapshot()
        solution = solve_instance(snap.instance(), GTASolver(), seed=0)
        state.commit(snap, solution.assignments)
        stats = state.worker_stats()
        wid, worker_stats = next(
            (w, s) for w, s in stats.items() if s["assignments"] > 0
        )
        assert state.available_worker_count() < 3
        state.advance(worker_stats["available_at"] - state.now)
        snap2 = state.snapshot()
        moved = [
            w
            for sub in snap2.subproblems
            for w in sub.workers
            if w.worker_id == wid
        ]
        if moved:  # the worker's center may have no offered tasks left
            assert moved[0].location != Point(0.1, 0.0)

    def test_uncommitted_snapshot_leaves_world_untouched(self):
        state = make_world()
        version = state.version
        snap = state.snapshot()
        solve_instance(snap.instance(), GTASolver(), seed=0)
        assert state.version == version
        assert state.pending_task_count == 6
        assert state.available_worker_count() == 3
