"""Chaos tests: the dispatch engine under deterministic fault injection.

The ISSUE's robustness acceptance criteria live here:

* with seeded ``FaultPlan`` chaos, every committed round still yields
  pairwise-disjoint, deadline-feasible (Definition 6 valid) assignments —
  the engine degrades, it never corrupts;
* the fault-tolerant path with **no** faults is bit-identical to the
  legacy engine (the differential guarantee);
* round wall-clock stays bounded by
  ``solve_deadline_s x ladder length x attempts x centers + epsilon``.
"""

import threading
import time

import pytest

from repro.games.fgt import FGTSolver
from repro.obs.metrics import METRICS
from repro.service.breaker import BreakerConfig, OPEN
from repro.service.engine import (
    MAX_ABANDONED_SOLVES,
    DispatchEngine,
    EngineDraining,
)
from repro.service.faults import FaultPlan

from tests.service.conftest import make_world

EPSILON = 0.8


def _engine(seed=11, **kwargs):
    return DispatchEngine(
        make_world(), FGTSolver(epsilon=EPSILON), seed=seed, epsilon=EPSILON,
        **kwargs,
    )


@pytest.fixture(autouse=True)
def _join_abandoned_solves():
    # Timed-out solves are detached, not killed: a delay-injected solve
    # wakes seconds later and keeps emitting through the process-wide
    # metrics/trace sinks.  Left running, it bleeds records into whatever
    # test holds those sinks next (e.g. the CLI trace tests).  Join the
    # stragglers before moving on.
    yield
    deadline = time.monotonic() + 15.0
    for thread in threading.enumerate():
        if thread.name.startswith("solve-"):
            thread.join(timeout=max(0.0, deadline - time.monotonic()))


def _assert_round_valid(result):
    """Definition-6 spot checks on a committed RoundResult.

    The engine already runs the full :func:`repro.verify` battery on every
    accepted rung; this re-asserts the cross-center structure from the
    outside: no worker appears in two centers and no delivery point is
    served twice within one round.
    """
    seen_workers = set()
    seen_routes = set()
    for center_id, mapping in result.assignments.items():
        for worker_id, dp_ids in mapping.items():
            assert worker_id not in seen_workers, (
                f"worker {worker_id} assigned in two centers"
            )
            seen_workers.add(worker_id)
            assert len(set(dp_ids)) == len(dp_ids)
            for dp_id in dp_ids:
                assert (center_id, dp_id) not in seen_routes
                seen_routes.add((center_id, dp_id))


class TestDifferentialNoFault:
    """Acceptance: the FT path without faults is bit-identical to legacy."""

    def test_ft_engine_matches_legacy_bit_for_bit(self):
        legacy = _engine(seed=11)
        ft = _engine(seed=11, solve_deadline_s=60.0)
        assert not legacy.fault_tolerant and ft.fault_tolerant
        for _ in range(3):
            a = legacy.dispatch(advance_hours=0.05)
            b = ft.dispatch(advance_hours=0.05)
            assert a.assignments == b.assignments
            assert a.payoffs == b.payoffs
            assert a.payoff_difference == b.payoff_difference
            assert a.average_payoff == b.average_payoff
            assert a.assigned_tasks == b.assigned_tasks
            # Rounds with no pending work have no centers to degrade.
            assert set(b.degraded.values()) <= {"primary"}
        assert legacy.state.fingerprint() == ft.state.fingerprint()

    def test_ft_thread_fanout_matches_serial(self):
        # The fault-tolerant path honours n_jobs by fanning centers out
        # across a thread pool; seeds are derived per center up front, so
        # the result is bit-identical to the serial walk.
        serial = _engine(seed=11, solve_deadline_s=60.0)
        threaded = _engine(seed=11, solve_deadline_s=60.0, n_jobs=4)
        for _ in range(2):
            a = serial.dispatch(advance_hours=0.05)
            b = threaded.dispatch(advance_hours=0.05)
            assert a.assignments == b.assignments
            assert a.payoffs == b.payoffs
            assert a.degraded == b.degraded
            assert a.verified_centers == b.verified_centers
        assert serial.state.fingerprint() == threaded.state.fingerprint()

    def test_inactive_fault_plan_is_still_bit_identical(self):
        legacy = _engine(seed=11)
        ft = _engine(seed=11, faults=FaultPlan(seed=1))  # all rates zero
        a = legacy.dispatch()
        b = ft.dispatch()
        assert a.assignments == b.assignments
        assert a.payoffs == b.payoffs


class TestDegradationLadder:
    """Injected faults walk the ladder; every rung's output is verified."""

    def test_injected_errors_degrade_but_commit_validly(self):
        engine = _engine(
            seed=11,
            solve_retries=0,
            backoff_base_s=0.0,
            faults=FaultPlan(seed=3, error_rate=1.0, max_round=1),
        )
        chaotic = engine.dispatch(advance_hours=0.05)
        # Every rung raises in round 0, so every center lands on skip.
        assert set(chaotic.degraded.values()) == {"skip"}
        assert chaotic.assigned_tasks == 0
        # The skip assignment is verified like every other rung's output,
        # so the verified count stays honest even on an all-skip round.
        assert chaotic.verified_centers == len(chaotic.center_ids)
        _assert_round_valid(chaotic)
        # Round 1 is past max_round: faults stop, the engine recovers and
        # the carried-over tasks get assigned by the primary solver.
        clean = engine.dispatch()
        assert set(clean.degraded.values()) == {"primary"}
        assert clean.assigned_tasks > 0
        _assert_round_valid(clean)

    def test_retry_can_ride_out_transient_errors(self):
        # error_rate < 1 with retries: whichever attempt draws clean runs
        # the primary solver, so at least one center should stay primary.
        engine = _engine(
            seed=11,
            solve_retries=3,
            backoff_base_s=0.0,
            faults=FaultPlan(seed=5, error_rate=0.5, max_round=1),
        )
        result = engine.dispatch()
        _assert_round_valid(result)
        assert "primary" in set(result.degraded.values())
        assert METRICS.counter("dispatch.injected_errors").value > 0

    def test_degradation_is_reproducible(self):
        plan = FaultPlan(seed=9, error_rate=0.7)
        kwargs = dict(solve_retries=0, backoff_base_s=0.0, faults=plan)
        a = _engine(seed=11, **kwargs).dispatch()
        b = _engine(seed=11, **kwargs).dispatch()
        assert a.degraded == b.degraded
        assert a.assignments == b.assignments
        assert a.payoffs == b.payoffs

    def test_degraded_rungs_are_reported(self):
        engine = _engine(
            seed=11,
            solve_retries=0,
            backoff_base_s=0.0,
            faults=FaultPlan(seed=3, error_rate=1.0, max_round=1),
        )
        result = engine.dispatch()
        assert result.as_dict()["degraded"] == result.degraded
        assert set(result.degraded) == set(result.center_ids)


class TestCacheCorruption:
    """Tampered cache hits are detected, evicted, and rebuilt cleanly."""

    def test_corrupted_hit_is_evicted_and_round_stays_correct(self):
        reference = _engine(seed=11)
        engine = _engine(
            seed=11,
            solve_retries=1,
            backoff_base_s=0.0,
            faults=FaultPlan(seed=3, cache_corruption_rate=1.0, max_round=9),
        )
        before = METRICS.counter("dispatch.injected_corruptions").value
        failures_before = METRICS.counter("dispatch.solve_failures").value
        # Round 0 is a cold build (a miss), so no corruption can fire;
        # round 1 hits the warm cache and gets tampered.
        for _ in range(2):
            expected = reference.dispatch(advance_hours=0.0, commit=False)
            result = engine.dispatch(advance_hours=0.0, commit=False)
            assert result.assignments == expected.assignments
            assert result.payoffs == expected.payoffs
            _assert_round_valid(result)
        assert METRICS.counter("dispatch.injected_corruptions").value > before
        assert METRICS.counter("dispatch.solve_failures").value > failures_before


class TestDeadlines:
    """The solve budget actually bounds a round's wall clock."""

    def test_delayed_solves_time_out_and_round_stays_bounded(self):
        deadline = 0.15
        retries = 0
        engine = _engine(
            seed=11,
            solve_deadline_s=deadline,
            solve_retries=retries,
            backoff_base_s=0.0,
            faults=FaultPlan(seed=3, delay_rate=1.0, delay_s=5.0, max_round=1),
        )
        start = time.perf_counter()
        result = engine.dispatch()
        elapsed = time.perf_counter() - start
        # Every attempt of every rung sleeps 5 s, so each must be cut off
        # at the deadline and the center must fall through to skip.
        assert set(result.degraded.values()) == {"skip"}
        centers = len(result.center_ids)
        ladder = 4  # primary, scalar, greedy, skip
        bound = deadline * ladder * (1 + retries) * centers + 1.0
        assert elapsed <= bound, f"round took {elapsed:.2f}s > bound {bound:.2f}s"
        assert METRICS.counter("dispatch.solve_timeouts").value > 0
        _assert_round_valid(result)

    def test_abandoned_hung_solves_are_capped(self):
        # A timed-out solve cannot be killed, only detached.  A solver
        # that hangs on every attempt may leak at most
        # MAX_ABANDONED_SOLVES threads per center; attempts past the cap
        # fail fast (no new thread) and the ladder degrades to skip.
        deadline = 0.05
        engine = _engine(
            seed=11,
            solve_deadline_s=deadline,
            solve_retries=6,
            backoff_base_s=0.0,
            faults=FaultPlan(seed=3, delay_rate=1.0, delay_s=1.0),
        )
        rejections = METRICS.counter("dispatch.hung_solve_rejections").value
        threads_before = threading.active_count()
        start = time.perf_counter()
        result = engine.dispatch()
        elapsed = time.perf_counter() - start
        assert set(result.degraded.values()) == {"skip"}
        assert (
            METRICS.counter("dispatch.hung_solve_rejections").value > rejections
        )
        # At most the cap's worth of detached solver threads per center —
        # not one per attempt (7 primary attempts alone would exceed it).
        centers = len(result.center_ids)
        assert (
            threading.active_count() - threads_before
            <= MAX_ABANDONED_SOLVES * centers
        )
        # Rejected attempts cost no deadline wait, so the round stays far
        # under the one-timeout-per-attempt worst case.
        assert elapsed <= MAX_ABANDONED_SOLVES * deadline * centers + 1.0
        _assert_round_valid(result)

    def test_generous_deadline_changes_nothing(self):
        a = _engine(seed=11).dispatch()
        b = _engine(seed=11, solve_deadline_s=120.0).dispatch()
        assert a.assignments == b.assignments


class TestBreakerIntegration:
    """Repeated center failures trip the breaker; cooldown lets it heal."""

    def test_breaker_opens_then_probes_closed(self):
        clock_now = [0.0]
        engine = _engine(
            seed=11,
            solve_retries=0,
            backoff_base_s=0.0,
            breaker=BreakerConfig(failure_threshold=1, cooldown_s=100.0),
            breaker_clock=lambda: clock_now[0],
            faults=FaultPlan(seed=3, error_rate=1.0, max_round=1),
        )
        shortcuts = METRICS.counter("dispatch.breaker_shortcuts").value
        engine.dispatch(advance_hours=0.0, commit=False)  # trips every breaker
        assert set(engine.breakers.states().values()) == {OPEN}
        # While open, the next round skips straight to greedy: no primary
        # attempt, no new failures, and (faults having ended) it succeeds.
        result = engine.dispatch(advance_hours=0.0, commit=False)
        assert set(result.degraded.values()) == {"greedy"}
        assert (
            METRICS.counter("dispatch.breaker_shortcuts").value
            > shortcuts
        )
        # After the cooldown a half-open probe runs the primary solver and
        # closes the breaker again.
        clock_now[0] = 101.0
        healed = engine.dispatch(advance_hours=0.0, commit=False)
        assert set(healed.degraded.values()) == {"primary"}
        assert set(engine.breakers.states().values()) == {"closed"}


class TestChaosSoak:
    """Multi-round mixed chaos: commits stay valid, state stays sane."""

    def test_mixed_fault_soak(self):
        engine = _engine(
            seed=11,
            solve_deadline_s=2.0,
            solve_retries=1,
            backoff_base_s=0.0,
            faults=FaultPlan(
                seed=17,
                error_rate=0.4,
                cache_corruption_rate=0.3,
                max_round=4,
            ),
        )
        for round_index in range(6):
            result = engine.dispatch(advance_hours=0.05)
            _assert_round_valid(result)
            assert result.round_index == round_index
            assert set(result.degraded) == set(result.center_ids)
        # The world is still self-consistent after the storm.
        assert engine.state.pending_task_count >= 0
        assert engine.state.version > 0


class TestDrainRegression:
    """Satellite (a): SIGTERM mid-round commits before the drain."""

    def test_dispatch_after_begin_drain_raises(self):
        engine = _engine(seed=11)
        engine.begin_drain()
        assert engine.draining
        with pytest.raises(EngineDraining):
            engine.dispatch()
        # Nothing was committed by the refused round.
        assert engine.rounds_dispatched == 0
        assert engine.last_committed is None

    def test_in_flight_round_commits_through_a_drain(self):
        import threading

        engine = _engine(seed=11)
        started = threading.Event()
        finished = []

        class _SignallingSolver(FGTSolver):
            """FGT that lets the test drain mid-solve."""

            def solve(self, sub, **kwargs):
                started.set()
                time.sleep(0.05)  # hold the round open across begin_drain
                return super().solve(sub, **kwargs)

        engine._solver = _SignallingSolver(epsilon=EPSILON)
        worker = threading.Thread(
            target=lambda: finished.append(engine.dispatch())
        )
        worker.start()
        assert started.wait(timeout=10.0)
        engine.begin_drain()  # the SIGTERM moment: round is mid-solve
        engine.drain()  # must block until the commit has landed
        worker.join(timeout=10.0)
        assert len(finished) == 1
        assert finished[0].committed
        assert engine.rounds_dispatched == 1
        assert engine.last_committed is finished[0]
