"""Supervised shard pool: hashing, bit-identity, facade surface, HTTP.

The contract under test (``docs/fault_tolerance.md``): routing centers
across N worker processes is an *implementation detail* — every per-center
stream depends only on (seed, round index, solver name, center id), so the
sharded engine must produce bit-identical rounds to the single-process
engine, and the facade must present the same duck-typed surface the HTTP
layer already speaks.

Every arm sets ``solve_deadline_s`` so an inherited ``REPRO_FAULTS`` (the
chaos-smoke CI job exports one) cannot put one arm on the fault-tolerant
ladder and not the other.
"""

from __future__ import annotations

import time

import pytest

from repro.baselines.mpta import MPTASolver
from repro.geo.travel import TravelModel
from repro.service import DispatchClient, DispatchEngine, ServiceUnavailable
from repro.service.api import DispatchServer
from repro.service.engine import EngineDraining
from repro.service.shards import (
    ShardedDispatchEngine,
    plan_shards,
    shard_for,
)

from tests.conftest import make_worker
from tests.service.conftest import make_world, seed_tasks, two_center_layout

ROUND_KEYS = (
    "round",
    "now",
    "assigned_tasks",
    "assignments",
    "payoffs",
    "payoff_difference",
    "average_payoff",
    "pending_tasks",
    "available_workers",
)


def make_sharded(shards: int = 2, **kw) -> ShardedDispatchEngine:
    """A two-shard pool over the standard two-center test layout."""
    kw.setdefault("travel", TravelModel())
    kw.setdefault("seed", 7)
    kw.setdefault("solve_deadline_s", 30.0)
    kw.setdefault("heartbeat_timeout_s", 5.0)
    kw.setdefault("journal_fsync", False)
    return ShardedDispatchEngine(
        two_center_layout(), MPTASolver(), shards=shards, **kw
    )


def seed_sharded(engine: ShardedDispatchEngine) -> None:
    """The same fleet and queue ``make_world`` seeds, through the view."""
    accepted, rejected = engine.state.add_workers(
        [
            make_worker("wa1", 0.1, 0.0, max_dp=2, center_id="A"),
            make_worker("wa2", -0.2, 0.1, max_dp=2, center_id="A"),
            make_worker("wb1", 10.1, 0.0, max_dp=2, center_id="B"),
        ]
    )
    assert len(accepted) == 3 and not rejected
    accepted, rejected = engine.state.add_tasks(seed_tasks())
    assert len(accepted) == 6 and not rejected


class TestHashing:
    """The stable center -> shard map every process must agree on."""

    def test_shard_for_is_deterministic_and_in_range(self):
        for cid in (f"c{i}" for i in range(50)):
            k = shard_for(cid, 4)
            assert 0 <= k < 4
            assert shard_for(cid, 4) == k  # pure function of the inputs

    def test_shard_for_is_minimally_disruptive(self):
        # The rendezvous property: growing the pool only ever moves a
        # center onto the *new* shard, never between survivors.
        for cid in (f"center-{i}" for i in range(80)):
            before = shard_for(cid, 3)
            after = shard_for(cid, 4)
            assert after in (before, 3)

    def test_plan_shards_partitions_every_center(self):
        ids = [f"c{i}" for i in range(11)]
        plan = plan_shards(ids, 3)
        assert sorted(plan) == [0, 1, 2]
        seen = [cid for group in plan.values() for cid in group]
        assert sorted(seen) == sorted(ids)
        assert all(group for group in plan.values())  # no empty shard

    def test_plan_shards_rejects_more_shards_than_centers(self):
        with pytest.raises(ValueError):
            plan_shards(["only"], 2)


class TestBitIdentity:
    """Shard layout must never change results (the tentpole gate)."""

    def test_two_shards_match_single_process(self):
        single = DispatchEngine(
            make_world(), MPTASolver(), seed=7, solve_deadline_s=30.0
        )
        want = [
            single.dispatch(advance_hours=0.25).as_dict() for _ in range(3)
        ]
        sharded = make_sharded()
        try:
            seed_sharded(sharded)
            got = [
                sharded.dispatch(advance_hours=0.25).as_dict()
                for _ in range(3)
            ]
        finally:
            sharded.begin_drain()
            sharded.drain()
        for round_index, (a, b) in enumerate(zip(want, got)):
            for key in ROUND_KEYS:
                assert a[key] == b[key], (round_index, key)


class TestFacadeSurface:
    """The view the HTTP layer and CLI speak, fanned out over RPC."""

    def test_view_merges_partition_counts(self):
        engine = make_sharded()
        try:
            seed_sharded(engine)
            view = engine.state
            assert view.pending_task_count == 6
            assert view.worker_count == 3
            assert view.available_worker_count() == 3
            stats = view.worker_stats()
            assert list(stats) == ["wa1", "wa2", "wb1"]
            assert stats["wa1"]["center_id"] == "A"
            assert stats["wb1"]["center_id"] == "B"
            assert view.fingerprint() == view.fingerprint()
            assert view.journal is None  # segments live in the workers
            assert view.equity is None  # documented sharded scope cut
        finally:
            engine.begin_drain()
            engine.drain()

    def test_worker_without_center_attaches_to_nearest(self):
        engine = make_sharded()
        try:
            accepted, rejected = engine.state.add_workers(
                [
                    {"worker_id": "roam", "x": 9.8, "y": 0.2},
                    {"worker_id": "lost", "x": 0.0, "y": 0.0, "center_id": "Z"},
                ]
            )
            assert accepted == ["roam"]
            assert [r.item_id for r in rejected] == ["lost"]
            stats = engine.state.worker_stats()
            assert stats["roam"]["center_id"] == "B"  # nearest on the map
        finally:
            engine.begin_drain()
            engine.drain()

    def test_unknown_delivery_point_is_rejected_locally(self):
        engine = make_sharded()
        try:
            accepted, rejected = engine.state.add_tasks(
                [{"task_id": "tx", "dp_id": "nope", "expiry": 2.0}]
            )
            assert accepted == []
            assert [r.item_id for r in rejected] == ["tx"]
        finally:
            engine.begin_drain()
            engine.drain()

    def test_draining_pool_refuses_dispatch(self):
        engine = make_sharded()
        try:
            seed_sharded(engine)
            engine.begin_drain()
            assert engine.draining
            with pytest.raises(EngineDraining):
                engine.dispatch()
        finally:
            engine.drain()

    def test_shard_health_reports_live_partitions(self):
        engine = make_sharded()
        try:
            health = engine.shard_health()
            assert sorted(health) == ["0", "1"]
            assert all(h["status"] == "live" for h in health.values())
            assert sorted(
                cid for h in health.values() for cid in h["centers"]
            ) == ["A", "B"]
        finally:
            engine.begin_drain()
            engine.drain()


class TestShardedHTTP:
    """The HTTP layer over a sharded engine: healthz, SLOs, dispatch."""

    def test_serves_rounds_and_reports_shards(self):
        engine = make_sharded()
        try:
            with DispatchServer(engine, port=0) as server:
                client = DispatchClient(server.url, timeout=10.0, retries=1)
                client.wait_healthy(timeout=15.0)
                seed_sharded(engine)
                record = client.dispatch(advance_hours=0.25)
                assert record["round"] == 0
                health = client.health()
                assert health["status"] == "ok"
                assert sorted(health["shards"]) == ["0", "1"]
                assert health["shards_down"] == []
                slo = client.slo()
                names = [o["name"] for o in slo["objectives"]]
                assert "shard_liveness" in names
        finally:
            engine.begin_drain()
            engine.drain()

    def test_dead_shard_turns_healthz_503(self):
        engine = make_sharded()
        try:
            with DispatchServer(engine, port=0) as server:
                client = DispatchClient(server.url, timeout=10.0, retries=0)
                client.wait_healthy(timeout=15.0)
                engine.supervisor.kill_shard(0)
                health = client.health()  # unwraps the 503 payload
                assert health["status"] == "degraded"
                assert "0" in health["shards_down"]
                # The monitor revives the shard; liveness must recover.
                deadline = time.monotonic() + 20.0
                while time.monotonic() < deadline:
                    health = client.health()
                    if not health["shards_down"]:
                        break
                    time.sleep(0.1)
                assert health["shards_down"] == []
                assert health["status"] == "ok"
        finally:
            engine.begin_drain()
            engine.drain()

    def test_draining_healthz_is_503(self):
        engine = make_sharded()
        try:
            with DispatchServer(engine, port=0) as server:
                client = DispatchClient(server.url, timeout=10.0, retries=0)
                client.wait_healthy(timeout=15.0)
                engine.begin_drain()
                assert client.health()["status"] == "draining"
                with pytest.raises(ServiceUnavailable) as excinfo:
                    client.dispatch()
                assert excinfo.value.status == 503
        finally:
            engine.drain()
