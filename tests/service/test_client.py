"""Tests for the client-side pieces: ServiceError and the load generator."""

import pytest

from repro.games.fgt import FGTSolver
from repro.service import (
    DispatchClient,
    DispatchEngine,
    DispatchServer,
    LoadGenerator,
    ServiceError,
    ServiceUnavailable,
)

from tests.service.conftest import make_world


class TestServiceError:
    def test_carries_status_and_message(self):
        error = ServiceError(404, "no such endpoint")
        assert error.status == 404
        assert "HTTP 404" in str(error) and "no such endpoint" in str(error)


class TestLoadGenerator:
    def test_same_seed_same_traffic(self):
        a = LoadGenerator(["a1", "b1"], seed=3)
        b = LoadGenerator(["a1", "b1"], seed=3)
        assert a.tasks(5) == b.tasks(5)
        assert a.workers(3) == b.workers(3)

    def test_batches_are_independent_streams(self):
        gen = LoadGenerator(["a1", "b1"], seed=3)
        first = gen.tasks(4)
        second = gen.tasks(4)
        assert {t["task_id"] for t in first}.isdisjoint(
            t["task_id"] for t in second
        )
        # Named per-batch streams: batch 1 draws fresh values, but replaying
        # the generator reproduces both batches exactly.
        replay = LoadGenerator(["a1", "b1"], seed=3)
        assert replay.tasks(4) == first and replay.tasks(4) == second

    def test_task_fields(self):
        gen = LoadGenerator(["a1"], seed=0, patience=(0.5, 1.0), reward=2.0)
        (generated,) = gen.tasks(1, now=3.0)
        assert generated["dp_id"] == "a1"
        assert 3.5 <= generated["expiry"] <= 4.0
        assert generated["reward"] == 2.0

    def test_worker_fields_and_center_pin(self):
        gen = LoadGenerator(["a1"], seed=0)
        (free,) = gen.workers(1, span_km=1.0)
        assert "center_id" not in free
        assert -1.0 <= free["x"] <= 1.0 and -1.0 <= free["y"] <= 1.0
        (pinned,) = gen.workers(1, center_id="A")
        assert pinned["center_id"] == "A"

    def test_validation(self):
        with pytest.raises(ValueError, match="delivery point"):
            LoadGenerator([])
        with pytest.raises(ValueError, match="patience"):
            LoadGenerator(["a1"], patience=(0.0, 1.0))
        with pytest.raises(ValueError, match="count"):
            LoadGenerator(["a1"]).tasks(-1)

    def test_generated_traffic_is_servable(self):
        # The zero->aha loop: generated churn flows through the real API
        # and a dispatch round assigns some of it.
        engine = DispatchEngine(
            make_world(with_tasks=False), FGTSolver(epsilon=0.8), epsilon=0.8, seed=4
        )
        dp_ids = [
            dp.dp_id
            for center in engine.state.centers
            for dp in center.delivery_points
        ]
        gen = LoadGenerator(dp_ids, seed=12)
        with DispatchServer(engine, port=0) as server:
            client = DispatchClient(server.url, timeout=5.0)
            client.wait_healthy(timeout=5.0)
            assert len(client.submit_tasks(gen.tasks(10))["accepted"]) == 10
            result = client.dispatch()
            assert result["assigned_tasks"] > 0


class TestRetries:
    """Satellite: per-request timeout plus bounded retry with backoff."""

    def test_validation(self):
        with pytest.raises(ValueError, match="retries"):
            DispatchClient("http://127.0.0.1:1", retries=-1)
        with pytest.raises(ValueError, match="backoff_s"):
            DispatchClient("http://127.0.0.1:1", backoff_s=-0.1)

    def test_unreachable_service_raises_typed_error(self):
        # Port 9 on localhost refuses instantly; three attempts, no sleeps.
        client = DispatchClient(
            "http://127.0.0.1:9", timeout=0.5, retries=2, backoff_s=0.0
        )
        with pytest.raises(ServiceUnavailable) as excinfo:
            client.health()
        assert excinfo.value.status == 0
        assert "after 3 attempt(s)" in str(excinfo.value)

    def test_retry_rides_out_a_late_start(self):
        # The service comes up *after* the first attempt fails: a client
        # with backoff keeps trying and lands on the live server.
        import socket
        import threading
        import time as _time

        engine = DispatchEngine(
            make_world(), FGTSolver(epsilon=0.8), epsilon=0.8, seed=4
        )
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
        server = DispatchServer(engine, port=port)

        def late_start():
            _time.sleep(0.3)
            server.start_background()

        starter = threading.Thread(target=late_start)
        starter.start()
        try:
            client = DispatchClient(
                f"http://127.0.0.1:{port}", timeout=2.0, retries=5, backoff_s=0.2
            )
            assert client.health()["status"] == "ok"
        finally:
            starter.join(timeout=5.0)
            server.stop()

    def test_dispatch_is_not_retried_by_default(self):
        # POST /dispatch is not idempotent: a request that dies mid-solve
        # may still commit, so a retry would launch a second round.  A
        # connection failure must surface after ONE attempt unless the
        # caller opts in with retry=True.
        client = DispatchClient(
            "http://127.0.0.1:9", timeout=0.5, retries=3, backoff_s=0.0
        )
        with pytest.raises(ServiceUnavailable) as excinfo:
            client.dispatch()
        assert "after 1 attempt(s)" in str(excinfo.value)
        with pytest.raises(ServiceUnavailable) as excinfo:
            client.dispatch(retry=True)
        assert "after 4 attempt(s)" in str(excinfo.value)

    def test_submit_posts_are_retried_because_server_dedupes(self):
        # The submit endpoints reject duplicate ids server-side, so the
        # client may safely retry them on connection failures.
        client = DispatchClient(
            "http://127.0.0.1:9", timeout=0.5, retries=2, backoff_s=0.0
        )
        with pytest.raises(ServiceUnavailable) as excinfo:
            client.submit_tasks([])
        assert "after 3 attempt(s)" in str(excinfo.value)
        with pytest.raises(ServiceUnavailable) as excinfo:
            client.submit_workers([])
        assert "after 3 attempt(s)" in str(excinfo.value)

    def test_replayed_submit_batch_is_not_applied_twice(self):
        # The server-side dedupe the retry policy leans on: resubmitting
        # an identical batch rejects every item instead of re-applying it.
        engine = DispatchEngine(
            make_world(with_tasks=False), FGTSolver(epsilon=0.8), epsilon=0.8, seed=4
        )
        dp_ids = [
            dp.dp_id
            for center in engine.state.centers
            for dp in center.delivery_points
        ]
        batch = LoadGenerator(dp_ids, seed=7).tasks(5)
        with DispatchServer(engine, port=0) as server:
            client = DispatchClient(server.url, timeout=5.0)
            client.wait_healthy(timeout=5.0)
            first = client.submit_tasks(batch)
            replay = client.submit_tasks(batch)
        assert len(first["accepted"]) == 5
        assert replay["accepted"] == []
        assert len(replay["rejected"]) == 5
        assert engine.state.pending_task_count == 5

    def test_http_errors_are_not_retried(self):
        engine = DispatchEngine(
            make_world(), FGTSolver(epsilon=0.8), epsilon=0.8, seed=4
        )
        with DispatchServer(engine, port=0) as server:
            client = DispatchClient(server.url, timeout=5.0, retries=3)
            client.wait_healthy(timeout=5.0)
            before = engine.rounds_dispatched
            with pytest.raises(ServiceError) as excinfo:
                client._json("POST", "/dispatch", {"advance_hours": -1.0})
            assert excinfo.value.status == 400
            assert engine.rounds_dispatched == before  # one attempt only

    def test_503_maps_to_service_unavailable(self):
        engine = DispatchEngine(
            make_world(), FGTSolver(epsilon=0.8), epsilon=0.8, seed=4
        )
        with DispatchServer(engine, port=0) as server:
            client = DispatchClient(server.url, timeout=5.0, retries=0)
            client.wait_healthy(timeout=5.0)
            engine.begin_drain()
            with pytest.raises(ServiceUnavailable) as excinfo:
                client.dispatch()
            assert excinfo.value.status == 503
            assert isinstance(excinfo.value, ServiceError)
