"""Tests for the client-side pieces: ServiceError and the load generator."""

import pytest

from repro.games.fgt import FGTSolver
from repro.service import (
    DispatchClient,
    DispatchEngine,
    DispatchServer,
    LoadGenerator,
    ServiceError,
)

from tests.service.conftest import make_world


class TestServiceError:
    def test_carries_status_and_message(self):
        error = ServiceError(404, "no such endpoint")
        assert error.status == 404
        assert "HTTP 404" in str(error) and "no such endpoint" in str(error)


class TestLoadGenerator:
    def test_same_seed_same_traffic(self):
        a = LoadGenerator(["a1", "b1"], seed=3)
        b = LoadGenerator(["a1", "b1"], seed=3)
        assert a.tasks(5) == b.tasks(5)
        assert a.workers(3) == b.workers(3)

    def test_batches_are_independent_streams(self):
        gen = LoadGenerator(["a1", "b1"], seed=3)
        first = gen.tasks(4)
        second = gen.tasks(4)
        assert {t["task_id"] for t in first}.isdisjoint(
            t["task_id"] for t in second
        )
        # Named per-batch streams: batch 1 draws fresh values, but replaying
        # the generator reproduces both batches exactly.
        replay = LoadGenerator(["a1", "b1"], seed=3)
        assert replay.tasks(4) == first and replay.tasks(4) == second

    def test_task_fields(self):
        gen = LoadGenerator(["a1"], seed=0, patience=(0.5, 1.0), reward=2.0)
        (generated,) = gen.tasks(1, now=3.0)
        assert generated["dp_id"] == "a1"
        assert 3.5 <= generated["expiry"] <= 4.0
        assert generated["reward"] == 2.0

    def test_worker_fields_and_center_pin(self):
        gen = LoadGenerator(["a1"], seed=0)
        (free,) = gen.workers(1, span_km=1.0)
        assert "center_id" not in free
        assert -1.0 <= free["x"] <= 1.0 and -1.0 <= free["y"] <= 1.0
        (pinned,) = gen.workers(1, center_id="A")
        assert pinned["center_id"] == "A"

    def test_validation(self):
        with pytest.raises(ValueError, match="delivery point"):
            LoadGenerator([])
        with pytest.raises(ValueError, match="patience"):
            LoadGenerator(["a1"], patience=(0.0, 1.0))
        with pytest.raises(ValueError, match="count"):
            LoadGenerator(["a1"]).tasks(-1)

    def test_generated_traffic_is_servable(self):
        # The zero->aha loop: generated churn flows through the real API
        # and a dispatch round assigns some of it.
        engine = DispatchEngine(
            make_world(with_tasks=False), FGTSolver(epsilon=0.8), epsilon=0.8, seed=4
        )
        dp_ids = [
            dp.dp_id
            for center in engine.state.centers
            for dp in center.delivery_points
        ]
        gen = LoadGenerator(dp_ids, seed=12)
        with DispatchServer(engine, port=0) as server:
            client = DispatchClient(server.url, timeout=5.0)
            client.wait_healthy(timeout=5.0)
            assert len(client.submit_tasks(gen.tasks(10))["accepted"]) == 10
            result = client.dispatch()
            assert result["assigned_tasks"] > 0
