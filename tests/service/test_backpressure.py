"""Backpressure: bounded admission, 503 + Retry-After, client behaviour.

The overload contract (``docs/fault_tolerance.md``): the sharded engine
admits at most ``queue_bound`` concurrent dispatches and *sheds* the rest
with :class:`ServiceOverloaded` — it never queues them.  The HTTP layer
turns a shed into ``503`` with an RFC 9110 ``Retry-After`` header, the
``service.shard.shed`` counter records every rejection, and the client
backs off with full jitter, preferring the server's hint when present.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.baselines.mpta import MPTASolver
from repro.geo.travel import TravelModel
from repro.obs.metrics import METRICS
from repro.service import (
    DispatchClient,
    LoadGenerator,
    ServiceUnavailable,
)
from repro.service.api import DispatchServer
from repro.service.engine import ServiceOverloaded
from repro.service.shards import ShardedDispatchEngine

from tests.service.conftest import two_center_layout


def make_pool(queue_bound: int = 1) -> ShardedDispatchEngine:
    return ShardedDispatchEngine(
        two_center_layout(),
        MPTASolver(),
        travel=TravelModel(),
        shards=2,
        seed=7,
        solve_deadline_s=30.0,
        heartbeat_timeout_s=5.0,
        queue_bound=queue_bound,
    )


def slow_solves(engine: ShardedDispatchEngine, delay_s: float):
    """Wrap the supervisor so every solve RPC takes at least ``delay_s``."""
    supervisor = engine.supervisor
    original = supervisor.call

    def slowed(sid, op, **payload):
        if op == "solve_round":
            time.sleep(delay_s)
        return original(sid, op, **payload)

    supervisor.call = slowed
    return original


def seed_load(engine: ShardedDispatchEngine) -> None:
    load = LoadGenerator(["a1", "a2", "a3", "b1", "b2"], seed=11)
    accepted, _ = engine.state.add_workers(
        load.workers(6, span_km=1.0, center_id="A")
    )
    assert len(accepted) == 6
    accepted, _ = engine.state.add_tasks(load.tasks(20))
    assert len(accepted) == 20


class TestEngineAdmission:
    """Beyond ``queue_bound`` concurrent rounds, dispatch sheds."""

    def test_overload_sheds_with_retry_hint(self):
        engine = make_pool(queue_bound=1)
        try:
            seed_load(engine)
            slow_solves(engine, delay_s=0.8)
            shed_before = METRICS.counter("service.shard.shed").value
            results = []

            def occupant():
                results.append(engine.dispatch(advance_hours=0.1))

            thread = threading.Thread(target=occupant)
            thread.start()
            time.sleep(0.2)  # the occupant now holds the only slot
            t0 = time.perf_counter()
            with pytest.raises(ServiceOverloaded) as excinfo:
                engine.dispatch(advance_hours=0.1)
            rejected_in = time.perf_counter() - t0
            thread.join(timeout=30.0)

            assert excinfo.value.retry_after_s > 0
            assert rejected_in < 0.5  # shed fast, never queued
            shed = METRICS.counter("service.shard.shed").value - shed_before
            assert shed == 1
            assert len(results) == 1  # the admitted round completed
        finally:
            engine.begin_drain()
            engine.drain()

    def test_load_generator_storm_is_bounded(self):
        engine = make_pool(queue_bound=2)
        try:
            seed_load(engine)
            slow_solves(engine, delay_s=0.4)
            shed_before = METRICS.counter("service.shard.shed").value
            outcomes = []
            lock = threading.Lock()
            barrier = threading.Barrier(6)

            def hammer():
                barrier.wait(timeout=10.0)
                t0 = time.perf_counter()
                try:
                    engine.dispatch(advance_hours=0.05)
                    verdict = "ok"
                except ServiceOverloaded:
                    verdict = "shed"
                with lock:
                    outcomes.append((verdict, time.perf_counter() - t0))

            threads = [threading.Thread(target=hammer) for _ in range(6)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30.0)

            served = [wall for verdict, wall in outcomes if verdict == "ok"]
            sheds = [wall for verdict, wall in outcomes if verdict == "shed"]
            assert len(served) + len(sheds) == 6
            assert 1 <= len(served) <= 2  # the bound held
            assert len(sheds) >= 4
            # Shed requests return immediately — no latency blowup from
            # queueing behind the in-flight rounds.
            assert all(wall < 0.5 for wall in sheds)
            shed_count = (
                METRICS.counter("service.shard.shed").value - shed_before
            )
            assert shed_count == len(sheds)
        finally:
            engine.begin_drain()
            engine.drain()


class TestOverloadOverHTTP:
    """The API maps a shed to 503 with an integral Retry-After."""

    def test_503_carries_retry_after(self):
        engine = make_pool(queue_bound=1)
        try:
            seed_load(engine)
            slow_solves(engine, delay_s=1.0)
            with DispatchServer(engine, port=0) as server:
                client = DispatchClient(server.url, timeout=15.0, retries=0)
                client.wait_healthy(timeout=15.0)

                def occupant():
                    client_bg = DispatchClient(
                        server.url, timeout=15.0, retries=0
                    )
                    client_bg.dispatch(advance_hours=0.1)

                thread = threading.Thread(target=occupant)
                thread.start()
                time.sleep(0.3)
                with pytest.raises(ServiceUnavailable) as excinfo:
                    client.dispatch(advance_hours=0.1)
                thread.join(timeout=30.0)

                error = excinfo.value
                assert error.status == 503
                assert error.retry_after is not None
                assert error.retry_after >= 1.0  # header is integral-ceil
                assert error.payload is not None
                assert "retry_after_s" in error.payload
        finally:
            engine.begin_drain()
            engine.drain()


class TestClientBackoff:
    """Full-jitter backoff, Retry-After hint wins, bounded by the cap."""

    def test_jitter_stays_inside_the_exponential_envelope(self):
        client = DispatchClient("http://127.0.0.1:1", backoff_s=0.2, retries=4)
        for attempt in range(1, 5):
            for _ in range(50):
                delay = client._sleep_seconds(attempt)
                assert 0.0 <= delay <= 0.2 * (2 ** (attempt - 1))

    def test_retry_after_hint_overrides_jitter(self):
        client = DispatchClient("http://127.0.0.1:1", backoff_s=0.2)
        assert client._sleep_seconds(1, retry_after=2.5) == 2.5

    def test_retry_after_hint_is_capped(self):
        client = DispatchClient(
            "http://127.0.0.1:1", backoff_s=0.2, max_retry_after_s=5.0
        )
        assert client._sleep_seconds(1, retry_after=600.0) == 5.0

    def test_health_unwraps_503_payload(self):
        engine = make_pool(queue_bound=1)
        try:
            with DispatchServer(engine, port=0) as server:
                client = DispatchClient(server.url, timeout=10.0, retries=0)
                client.wait_healthy(timeout=15.0)
                engine.begin_drain()
                # /healthz is 503 while draining, but health() still
                # returns the body instead of raising.
                assert client.health()["status"] == "draining"
        finally:
            engine.drain()
