"""Tests for repro.service.faults (the deterministic chaos harness)."""

import dataclasses

import pytest

from repro.service.faults import (
    FAULTS_ENV_VAR,
    FaultPlan,
    resolve_faults,
    tear_journal_tail,
)
from repro.core.instance import SubProblem
from repro.vdps.catalog import build_catalog

from tests.conftest import make_center, make_dp, make_worker, unit_speed_travel


class TestDeterminism:
    """Same plan, same keys -> same chaos, replayable bit-for-bit."""

    def test_decisions_are_reproducible(self):
        a = FaultPlan(seed=7, delay_rate=0.5, error_rate=0.3)
        b = FaultPlan(seed=7, delay_rate=0.5, error_rate=0.3)
        keys = [(r, c, g, t) for r in range(4) for c in "AB"
                for g in range(2) for t in range(2)]
        assert [a.solver_action(*k) for k in keys] == [
            b.solver_action(*k) for k in keys
        ]
        assert [a.corrupt_catalog(r, c) for r in range(6) for c in "AB"] == [
            b.corrupt_catalog(r, c) for r in range(6) for c in "AB"
        ]

    def test_seed_changes_the_schedule(self):
        keys = [(r, c, 0, 0) for r in range(32) for c in "ABCD"]
        a = [FaultPlan(seed=1, error_rate=0.5).solver_action(*k) for k in keys]
        b = [FaultPlan(seed=2, error_rate=0.5).solver_action(*k) for k in keys]
        assert a != b

    def test_rates_behave_at_extremes(self):
        always = FaultPlan(seed=0, error_rate=1.0, delay_rate=1.0)
        assert always.solver_action(0, "A", 0, 0) == ("error", 0.0)  # error wins
        never = FaultPlan(seed=0)
        assert never.solver_action(0, "A", 0, 0) is None
        assert not never.active
        assert always.active

    def test_max_round_gates_everything(self):
        plan = FaultPlan(seed=0, error_rate=1.0,
                         cache_corruption_rate=1.0, max_round=2)
        assert plan.solver_action(1, "A", 0, 0) is not None
        assert plan.solver_action(2, "A", 0, 0) is None
        assert plan.corrupt_catalog(1, "A")
        assert not plan.corrupt_catalog(2, "A")

    def test_delay_action_carries_duration(self):
        plan = FaultPlan(seed=0, delay_rate=1.0, delay_s=0.25)
        assert plan.solver_action(0, "A", 0, 0) == ("delay", 0.25)


class TestValidationAndParsing:
    """from_spec / from_env / describe and field validation."""

    def test_rejects_bad_rates(self):
        with pytest.raises(ValueError):
            FaultPlan(error_rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(delay_s=-1.0)
        with pytest.raises(ValueError):
            FaultPlan(max_round=-1)

    def test_from_spec_round_trip(self):
        plan = FaultPlan.from_spec(
            "seed=7, delay_rate=0.5, delay_s=0.2, error_rate=0.25,"
            "cache_corruption_rate=0.1, max_round=3"
        )
        assert plan == FaultPlan(
            seed=7, delay_rate=0.5, delay_s=0.2, error_rate=0.25,
            cache_corruption_rate=0.1, max_round=3,
        )

    def test_from_spec_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="bad fault spec"):
            FaultPlan.from_spec("seed=1,bogus=2")
        with pytest.raises(ValueError, match="bad fault spec"):
            FaultPlan.from_spec("just-a-word")

    def test_env_resolution(self, monkeypatch):
        monkeypatch.delenv(FAULTS_ENV_VAR, raising=False)
        assert FaultPlan.from_env() is None
        assert resolve_faults(None) is None
        monkeypatch.setenv(FAULTS_ENV_VAR, "seed=3,error_rate=0.5")
        assert FaultPlan.from_env() == FaultPlan(seed=3, error_rate=0.5)
        assert resolve_faults(None) == FaultPlan(seed=3, error_rate=0.5)
        # An explicit plan beats the environment.
        explicit = FaultPlan(seed=9)
        assert resolve_faults(explicit) is explicit

    def test_describe_mentions_active_faults(self):
        text = FaultPlan(seed=5, error_rate=0.25, max_round=4).describe()
        assert "seed=5" in text and "error=0.25" in text and "max_round=4" in text


class TestCorruptionMechanics:
    """Catalog tampering and journal tearing actually break things."""

    def test_tamper_shifts_best_strategy_arrivals(self):
        center = make_center(
            [make_dp("d1", 1.0, 0.0), make_dp("d2", 0.0, 1.0)]
        )
        workers = (make_worker("w1", 0.1, 0.0, max_dp=2),)
        catalog = build_catalog(
            SubProblem(center, workers, unit_speed_travel())
        )
        tampered = FaultPlan.tamper(catalog)
        clean = catalog.strategies("w1")
        broken = tampered.strategies("w1")
        assert len(clean) == len(broken)
        assert broken[0].route.arrival_times != clean[0].route.arrival_times
        assert all(
            b > c + 999.0
            for c, b in zip(
                clean[0].route.arrival_times, broken[0].route.arrival_times
            )
        )
        # Payoff metadata is preserved: the rot is only detectable by
        # checking route feasibility, which is exactly what verify does.
        assert broken[0].payoff == clean[0].payoff

    def test_tamper_is_a_copy(self):
        center = make_center([make_dp("d1", 1.0, 0.0)])
        workers = (make_worker("w1", 0.1, 0.0),)
        catalog = build_catalog(
            SubProblem(center, workers, unit_speed_travel())
        )
        before = catalog.strategies("w1")[0].route.arrival_times
        FaultPlan.tamper(catalog)
        assert catalog.strategies("w1")[0].route.arrival_times == before

    def test_tear_journal_tail_truncates(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text("aaaa\nbbbbbbbbbb\n")
        size = tear_journal_tail(path, drop_bytes=4)
        # Drops the final newline plus 4 content bytes.
        assert size == path.stat().st_size == len("aaaa\nbbbbbb")
        assert path.read_bytes() == b"aaaa\nbbbbbb"

    def test_plan_is_frozen(self):
        plan = FaultPlan(seed=1)
        with pytest.raises(dataclasses.FrozenInstanceError):
            plan.seed = 2
