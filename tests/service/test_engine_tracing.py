"""Engine-level tracing: complete span trees, determinism, fairness gauges."""

import pytest

from repro.games.fgt import FGTSolver
from repro.obs import build_span_trees
from repro.obs.metrics import METRICS, reset_metrics
from repro.obs.tracer import MemoryTracer, start_trace
from repro.service.engine import DispatchEngine
from repro.service.faults import FaultPlan

from tests.service.conftest import make_world


@pytest.fixture(autouse=True)
def _fresh_metrics():
    reset_metrics()
    yield
    reset_metrics()


def _engine(trace=False, **kwargs):
    return DispatchEngine(
        make_world(),
        FGTSolver(epsilon=0.8),
        epsilon=0.8,
        seed=7,
        trace=trace,
        **kwargs,
    )


def _fingerprint(result):
    return (
        {c: dict(per) for c, per in result.assignments.items()},
        dict(result.payoffs),
        result.payoff_difference,
    )


class TestSpanTreeCompleteness:
    def test_legacy_round_is_one_rooted_tree(self):
        tracer = MemoryTracer()
        engine = _engine(trace=tracer)
        engine.dispatch()
        forest = build_span_trees(
            [self._parse(r) for r in tracer.records]
        )
        assert forest.orphans == []
        [trace_id] = forest.roots
        roots = forest.roots[trace_id]
        round_roots = [
            n for n in roots if n.record.kind == "service.round"
        ]
        assert len(round_roots) == 1

    def test_fault_tolerant_parallel_round_has_no_orphans(self):
        # The thread pool must not break causality: every center span and
        # rung span reconnects to its round even with n_jobs > 1.
        tracer = MemoryTracer()
        engine = _engine(trace=tracer, solve_deadline_s=30.0, n_jobs=2)
        engine.dispatch()
        forest = build_span_trees([self._parse(r) for r in tracer.records])
        assert forest.orphans == []
        [trace_id] = forest.roots
        [root] = [
            n
            for n in forest.roots[trace_id]
            if n.record.kind == "service.round"
        ]
        centers = [
            c for c in root.children if c.record.kind == "service.center_solve"
        ]
        assert {c.record.fields["center"] for c in centers} == {"A", "B"}
        for center in centers:
            rungs = [
                r for r in center.children if r.record.kind == "service.rung"
            ]
            assert rungs, "each center solve must show its ladder rungs"
            assert rungs[0].record.fields["rung"] == "primary"

    def test_chaos_round_spans_record_failed_attempts(self):
        tracer = MemoryTracer()
        engine = _engine(
            trace=tracer,
            solve_deadline_s=30.0,
            faults=FaultPlan.from_spec("seed=3,error_rate=1.0,max_round=1"),
        )
        engine.dispatch()
        rungs = [r for r in tracer.records if r["kind"] == "service.rung"]
        assert any("error" in r for r in rungs), (
            "injected faults must surface as error-annotated rung spans"
        )
        forest = build_span_trees([self._parse(r) for r in tracer.records])
        assert forest.orphans == []

    def test_ambient_context_adopts_external_trace(self):
        # An HTTP request's start_trace must become the round's ancestor
        # instead of the engine minting its own trace id.
        tracer = MemoryTracer()
        engine = _engine(trace=tracer)
        with start_trace("09" * 8):
            engine.dispatch()
        rounds = [r for r in tracer.records if r["kind"] == "service.round"]
        assert rounds and all(r["trace"] == "09" * 8 for r in rounds)

    @staticmethod
    def _parse(record):
        import json

        from repro.obs.reader import parse_record

        return parse_record(json.dumps(record))


class TestTracingDeterminism:
    """Tracing is observation: assignments must be bit-identical with it."""

    @pytest.mark.parametrize("seed", [0, 1, 7, 23])
    def test_seed_sweep_trace_on_off_identical(self, seed):
        def run(trace):
            engine = DispatchEngine(
                make_world(),
                FGTSolver(epsilon=0.8),
                epsilon=0.8,
                seed=seed,
                trace=trace,
            )
            return _fingerprint(engine.dispatch())

        assert run(False) == run(MemoryTracer())

    def test_fault_tolerant_path_is_trace_invariant(self):
        def run(trace):
            engine = _engine(trace=trace, solve_deadline_s=30.0, n_jobs=2)
            return _fingerprint(engine.dispatch())

        assert run(False) == run(MemoryTracer())


class TestFairnessGauges:
    def test_round_gini_and_jain_gauges_set(self):
        engine = _engine()
        result = engine.dispatch()
        assert result.payoffs, "seeded world must assign at least one worker"
        snap = METRICS.snapshot()
        assert 0.0 <= snap["fairness.round_gini"] <= 1.0
        assert 0.0 < snap["fairness.round_jain"] <= 1.0
        assert snap["fairness.worker_payoff.count"] == len(result.payoffs)

    def test_payoff_histogram_accumulates_across_rounds(self):
        engine = _engine()
        first = engine.dispatch()
        engine.state.add_tasks(
            [
                {"task_id": "late1", "dp_id": "a1", "expiry": 5.0},
                {"task_id": "late2", "dp_id": "b1", "expiry": 5.0},
            ]
        )
        second = engine.dispatch(advance_hours=0.1)
        expected = len(first.payoffs) + len(second.payoffs)
        assert METRICS.snapshot()["fairness.worker_payoff.count"] == expected

    def test_empty_round_leaves_gauges_untouched(self):
        engine = DispatchEngine(
            make_world(with_tasks=False),
            FGTSolver(epsilon=0.8),
            epsilon=0.8,
            seed=7,
        )
        engine.dispatch()
        snap = METRICS.snapshot()
        assert "fairness.round_gini" not in snap
