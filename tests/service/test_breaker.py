"""Tests for repro.service.breaker (per-center circuit breakers).

All transitions are driven by a fake monotonic clock, so the cooldown
behaviour is tested without sleeping.
"""

import pytest

from repro.service.breaker import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    BreakerBoard,
    BreakerConfig,
    CircuitBreaker,
)


class FakeClock:
    """A manually advanced monotonic clock."""

    def __init__(self) -> None:
        self.t = 0.0

    def __call__(self) -> float:
        return self.t

    def advance(self, seconds: float) -> None:
        self.t += seconds


def _breaker(threshold=3, cooldown=30.0):
    clock = FakeClock()
    breaker = CircuitBreaker(
        BreakerConfig(failure_threshold=threshold, cooldown_s=cooldown), clock
    )
    return breaker, clock


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            BreakerConfig(failure_threshold=0)
        with pytest.raises(ValueError):
            BreakerConfig(cooldown_s=0.0)

    def test_defaults(self):
        config = BreakerConfig()
        assert config.failure_threshold == 3
        assert config.cooldown_s == 30.0


class TestStateMachine:
    def test_opens_at_threshold(self):
        breaker, _ = _breaker(threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED and breaker.allow_primary()
        breaker.record_failure()
        assert breaker.state == OPEN and not breaker.allow_primary()

    def test_success_resets_the_count(self):
        breaker, _ = _breaker(threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CLOSED
        assert breaker.consecutive_failures == 1

    def test_cooldown_promotes_to_half_open(self):
        breaker, clock = _breaker(threshold=1, cooldown=10.0)
        breaker.record_failure()
        assert breaker.state == OPEN
        clock.advance(9.999)
        assert breaker.state == OPEN and not breaker.allow_primary()
        clock.advance(0.001)
        assert breaker.state == HALF_OPEN and breaker.allow_primary()

    def test_probe_success_closes(self):
        breaker, clock = _breaker(threshold=1, cooldown=10.0)
        breaker.record_failure()
        clock.advance(10.0)
        assert breaker.state == HALF_OPEN
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.consecutive_failures == 0

    def test_probe_failure_reopens_with_fresh_cooldown(self):
        breaker, clock = _breaker(threshold=1, cooldown=10.0)
        breaker.record_failure()
        clock.advance(10.0)
        assert breaker.state == HALF_OPEN
        breaker.record_failure()
        assert breaker.state == OPEN
        clock.advance(9.0)
        assert breaker.state == OPEN  # the cooldown restarted at reopen
        clock.advance(1.0)
        assert breaker.state == HALF_OPEN


class TestBoard:
    def test_breakers_are_per_center_and_cached(self):
        board = BreakerBoard(BreakerConfig(failure_threshold=1), FakeClock())
        a = board.for_center("A")
        assert board.for_center("A") is a
        a.record_failure()
        assert board.states() == {"A": OPEN}
        board.for_center("B")
        assert board.states() == {"A": OPEN, "B": CLOSED}
        assert board.open_count() == 1

    def test_snapshot_is_json_ready(self):
        board = BreakerBoard(BreakerConfig(failure_threshold=2), FakeClock())
        board.for_center("A").record_failure()
        snap = board.snapshot()
        assert snap == {"A": {"state": CLOSED, "consecutive_failures": 1}}

    def test_default_config_and_clock(self):
        board = BreakerBoard()
        assert board.config == BreakerConfig()
        assert board.for_center("X").state == CLOSED
