"""Kill-and-recover tests: the serve process survives SIGKILL bit-identically.

A real ``python -m repro serve --journal`` subprocess is killed with
SIGKILL (no shutdown hook runs, no buffer flushes) and restarted against
the same journal; the recovered world must report the same content
fingerprint over ``GET /healthz``.  This is the test-suite twin of the CI
``chaos-smoke`` job.
"""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.service import (
    DispatchClient,
    ServiceUnavailable,
    WorldState,
)

REPO_ROOT = Path(__file__).resolve().parents[2]


def _serve(tmp_path, tag, journal):
    """Launch ``python -m repro serve`` with ``journal``; return (proc, client)."""
    port_file = tmp_path / f"port-{tag}.txt"
    env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
    env.pop("REPRO_FAULTS", None)
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", "0",
            "--port-file", str(port_file),
            "--journal", str(journal),
            "--epsilon", "0.8",
            "--seed", "0",
            "--tasks", "24",
            "--workers", "6",
            "--delivery-points", "10",
        ],
        cwd=REPO_ROOT,
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            out = proc.stdout.read() if proc.stdout else ""
            raise AssertionError(f"serve died before binding:\n{out}")
        if port_file.exists() and port_file.read_text().strip():
            break
        time.sleep(0.05)
    else:
        proc.kill()
        raise AssertionError("serve never wrote its port file")
    port = int(port_file.read_text())
    client = DispatchClient(f"http://127.0.0.1:{port}", timeout=5.0)
    client.wait_healthy(timeout=15.0)
    return proc, client


class TestKillAndRecover:
    def test_sigkill_then_restart_is_bit_identical(self, tmp_path):
        journal = tmp_path / "world.jsonl"

        proc, client = _serve(tmp_path, "first", journal)
        try:
            first = client.dispatch(advance_hours=0.05)
            assert first["assigned_tasks"] > 0
            client.dispatch(advance_hours=0.05)
            health = client.health()
            fingerprint = health["world_fingerprint"]
            version = health["world_version"]
            assert health["journal"]["path"] == str(journal)
        finally:
            proc.kill()  # SIGKILL: no graceful shutdown, no final flush
            proc.wait(timeout=10.0)

        # Offline recovery of the abandoned journal already matches.
        offline = WorldState.recover(journal, resume=False)
        assert offline.fingerprint() == fingerprint
        assert offline.version == version

        # A restarted serve recovers the same world and keeps going.
        proc, client = _serve(tmp_path, "second", journal)
        try:
            health = client.health()
            assert health["world_fingerprint"] == fingerprint
            assert health["world_version"] == version
            # The revived service still dispatches on the recovered world.
            client.dispatch(advance_hours=0.05)
            client.shutdown()
            proc.wait(timeout=15.0)
            assert proc.returncode == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10.0)


class TestDrainOverHTTP:
    """Satellite (a) at the API layer: draining answers 503, typed."""

    def test_dispatch_while_draining_is_503(self):
        from repro.games.fgt import FGTSolver
        from repro.service import DispatchEngine, DispatchServer

        from tests.service.conftest import make_world

        engine = DispatchEngine(
            make_world(), FGTSolver(epsilon=0.8), epsilon=0.8, seed=1
        )
        with DispatchServer(engine) as server:
            client = DispatchClient(server.url, timeout=5.0, retries=0)
            client.wait_healthy(timeout=10.0)
            engine.begin_drain()
            assert client.health()["status"] == "draining"
            with pytest.raises(ServiceUnavailable) as excinfo:
                client.dispatch()
            assert excinfo.value.status == 503
