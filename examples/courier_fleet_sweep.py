#!/usr/bin/env python
"""Fleet-sizing study: how fairness changes as a courier fleet grows.

A delivery platform deciding how many couriers to keep on shift cares about
two curves: average courier earnings (efficiency) and the earnings gap
(fairness, which drives churn).  This script reuses the paper's Figure 6/7
experiment machinery to sweep the fleet size on a synthetic multi-depot
city and prints both curves for the greedy and the evolutionary policies.

Run:
    python examples/courier_fleet_sweep.py
"""

from repro import SynConfig, generate_synthetic
from repro.experiments.report import format_series_table, format_ratio_line
from repro.experiments.runner import default_algorithms
from repro.experiments.sweep import run_sweep

FLEET_SIZES = [20, 40, 60, 80]
EPSILON_KM = 2.0


def make_city(n_couriers: int):
    config = SynConfig(
        n_centers=2,  # two depots
        n_workers=n_couriers,
        n_delivery_points=120,
        n_tasks=2400,
        expiry_hours=2.0,
        space_km=18.0,
    )
    return generate_synthetic(config, seed=99)


def main() -> None:
    result = run_sweep(
        name="Fleet sizing",
        parameter="couriers",
        values=FLEET_SIZES,
        make_instance=make_city,
        algorithms=default_algorithms(include_mpta=False),
        epsilon_for=lambda _: EPSILON_KM,
        seed=1,
    )

    print(
        format_series_table(
            "Earnings gap (payoff difference) vs fleet size",
            FLEET_SIZES,
            {a: result.series("payoff_difference", a) for a in result.algorithms},
            column_header="couriers",
        )
    )
    print()
    print(
        format_series_table(
            "Average courier earnings rate vs fleet size",
            FLEET_SIZES,
            {a: result.series("average_payoff", a) for a in result.algorithms},
            column_header="couriers",
        )
    )
    print()
    print(format_ratio_line(result, "payoff_difference", "IEGT", "GTA"))
    print(
        "\nReading: growing the fleet dilutes everyone's earnings but "
        "shrinks the greedy policy's unfairness; the evolutionary policy "
        "keeps the gap low at every fleet size (the paper's Figure 7 "
        "stability claim)."
    )


if __name__ == "__main__":
    main()
