#!/usr/bin/env python
"""Render a city map and a figure-style chart as standalone SVG files.

Uses the library's dependency-free SVG renderer (``repro.viz``): no
matplotlib required.  Produces two files in the working directory:

* ``city_map.svg`` — the instance's geography: delivery points sized by
  task count, workers as crosses, the distribution center as a square;
* ``workers_sweep.svg`` — a Figure-7-style chart (payoff difference vs
  fleet size) regenerated live;
* ``earnings.svg`` — the per-worker payoff distribution of one IEGT
  assignment (the fairness staircase).

Run:
    python examples/visualize_city.py
"""

from pathlib import Path

from repro import GMissionConfig, IEGTSolver, generate_gmission_like
from repro.experiments.config import Scale
from repro.experiments.figures import fig6_workers_gm
from repro.viz import (
    render_instance_map,
    render_payoff_distribution,
    render_sweep_chart,
)


def main() -> None:
    # 1. The map.
    instance = generate_gmission_like(
        GMissionConfig(n_tasks=160, n_workers=20, n_delivery_points=40), seed=3
    )
    sub = instance.subproblems()[0]
    map_path = Path("city_map.svg")
    map_path.write_text(render_instance_map(sub))
    print(f"wrote {map_path} ({sub.describe()})")

    # 2. The chart: regenerate the Figure 6 experiment at smoke scale and
    #    render its fairness panel.
    sweep = fig6_workers_gm(scale=Scale.SMOKE, seed=0, include_mpta=False)
    chart_path = Path("workers_sweep.svg")
    chart_path.write_text(render_sweep_chart(sweep, "payoff_difference"))
    print(f"wrote {chart_path} ({sweep.name}, algorithms: {sweep.algorithms})")

    # 3. The distribution: one IEGT assignment's payoff staircase.
    result = IEGTSolver(epsilon=0.8).solve(sub, seed=1)
    dist_path = Path("earnings.svg")
    dist_path.write_text(
        render_payoff_distribution(result.assignment, title="IEGT worker payoffs")
    )
    print(f"wrote {dist_path} ({result.assignment.describe()})")

    print(
        "\nOpen the SVG files in a browser; swap Scale.SMOKE for Scale.CI "
        "to regenerate the paper-shaped curves (takes a few minutes)."
    )


if __name__ == "__main__":
    main()
