#!/usr/bin/env python
"""The dispatch service end to end, in one process.

Everything else in this repository solves a *frozen* instance; this example
runs the online service the ROADMAP aims at: an HTTP assignment engine over
a mutating world.  It starts a :class:`~repro.service.DispatchServer` on an
ephemeral port, injects deterministic churn through the real JSON API with
:class:`~repro.service.LoadGenerator`, and drives micro-batch rounds —
watching the snapshot-hash catalog cache skip C-VDPS rebuilds for untouched
centers while every committed round reports the paper's fairness metric
(Equation 2).

Run:
    python examples/live_dispatch.py
"""

from repro import FGTSolver, SynConfig, generate_synthetic
from repro.service import (
    DispatchClient,
    DispatchEngine,
    DispatchServer,
    LoadGenerator,
    WorldState,
)


def build_world(seed: int = 11) -> WorldState:
    """A three-center synthetic city wrapped as mutable service state."""
    instance = generate_synthetic(
        SynConfig(
            n_centers=3, n_workers=12, n_delivery_points=24, n_tasks=60,
            space_km=12.0,
        ),
        seed=seed,
    )
    state = WorldState(instance.centers, travel=instance.travel)
    state.add_workers(instance.workers)
    # The generated instance's relative deadlines become absolute at t=0.
    state.add_tasks(
        {
            "task_id": task.task_id,
            "dp_id": task.delivery_point_id,
            "expiry": task.expiry,
            "reward": task.reward,
        }
        for center in instance.centers
        for task in center.tasks
    )
    return state


def main() -> None:
    state = build_world()
    engine = DispatchEngine(
        state, FGTSolver(epsilon=2.0), epsilon=2.0, verify=True, seed=0
    )
    first_center = state.centers[0]
    generator = LoadGenerator(
        [dp.dp_id for dp in first_center.delivery_points],  # churn center 0 only
        seed=7,
        patience=(0.8, 1.6),
    )

    with DispatchServer(engine, port=0) as server:  # port 0 -> ephemeral
        client = DispatchClient(server.url)
        health = client.wait_healthy()
        print(
            f"service up at {server.url}: {len(state.centers)} centers, "
            f"{health['workers']} couriers, {health['pending_tasks']} "
            "pending tasks\n"
        )

        steps = [
            ("preview", dict(commit=False), None),
            ("preview again", dict(commit=False), None),
            ("churn + commit", dict(commit=True), 6),
            ("commit", dict(commit=True), None),
        ]
        header = (
            f"{'step':<15} {'assigned':>9} {'pending':>8} {'P_dif':>8} "
            f"{'cache h/m':>10}"
        )
        print(header)
        print("-" * len(header))
        for label, kwargs, n_new_tasks in steps:
            if n_new_tasks:
                client.submit_tasks(
                    generator.tasks(n_new_tasks, now=client.health()["now"])
                )
            result = client.dispatch(**kwargs)
            cache = result["cache"]
            print(
                f"{label:<15} {result['assigned_tasks']:>9d} "
                f"{result['pending_tasks']:>8d} "
                f"{result['payoff_difference']:>8.3f} "
                f"{cache['hits']:>5d}/{cache['misses']:<4d}"
            )

        metrics = client.metrics()
        print(
            f"\nTotals: {int(metrics['repro_service_tasks_assigned'])} tasks "
            f"assigned over {int(metrics['repro_service_rounds'])} rounds; "
            f"catalog cache {int(metrics['repro_service_catalog_cache_hits'])} "
            f"hits / {int(metrics['repro_service_catalog_cache_misses'])} "
            "misses; every round passed the Def. 8 invariant checkers."
        )
        print(
            "Reading: the repeated preview and the round that only churned "
            "center 0 reuse the other centers' cached strategy catalogs — "
            "the snapshot content hash proves nothing changed there, so the "
            "served assignment is bit-identical to a cold rebuild."
        )


if __name__ == "__main__":
    main()
