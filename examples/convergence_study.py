#!/usr/bin/env python
"""Convergence study: watch the games reach equilibrium (paper Figure 12).

Runs FGT and IEGT on the same sub-problem and prints per-round traces —
payoff difference, average payoff, and the number of workers that switched
strategy — as ASCII sparklines.  FGT stops at a pure Nash equilibrium of
the IAU game; IEGT stops at the improved evolutionary stable state.

Run:
    python examples/convergence_study.py
"""

from repro import FGTSolver, GMissionConfig, IEGTSolver, generate_gmission_like
from repro.vdps import build_catalog

BARS = " ▁▂▃▄▅▆▇█"


def sparkline(values) -> str:
    lo, hi = min(values), max(values)
    if hi - lo < 1e-12:
        return BARS[4] * len(values)
    return "".join(
        BARS[1 + int((v - lo) / (hi - lo) * (len(BARS) - 2))] for v in values
    )


def main() -> None:
    instance = generate_gmission_like(
        GMissionConfig(
            n_tasks=180,
            n_workers=25,
            n_delivery_points=45,
            expiry_min_hours=0.6,
            expiry_max_hours=2.0,
            hotspot_std_km=0.4,
        ),
        seed=5,
    )
    sub = instance.subproblems()[0]
    catalog = build_catalog(sub, epsilon=0.8)
    print(f"{sub.describe()}  |  {catalog.describe()}\n")

    for solver in (FGTSolver(epsilon=0.8), IEGTSolver(epsilon=0.8)):
        result = solver.solve(sub, catalog=catalog, seed=8)
        trace = result.trace
        pdif = trace.series("payoff_difference")
        avgp = trace.series("average_payoff")
        switches = trace.series("switches")
        print(
            f"{solver.name}: {'converged' if result.converged else 'stopped'} "
            f"after {result.rounds} round(s)"
        )
        print(f"  payoff difference  {sparkline(pdif)}  "
              f"{pdif[0]:.3f} -> {pdif[-1]:.3f}")
        print(f"  average payoff     {sparkline(avgp)}  "
              f"{avgp[0]:.3f} -> {avgp[-1]:.3f}")
        print(f"  strategy switches  {sparkline(switches)}  "
              f"{int(switches[0])} -> {int(switches[-1])}")
        print()

    print(
        "Both traces end on a round with zero switches: a fixed point of "
        "the respective dynamics (Figure 12's convergence claim)."
    )


if __name__ == "__main__":
    main()
