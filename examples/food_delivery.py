#!/usr/bin/env python
"""Food-delivery scenario: a lunch-rush dispatch round on clustered demand.

Simulates the paper's motivating use case — on-demand local delivery —
with a gMission-like clustered city: restaurants' orders pool at a dark
kitchen (the distribution center), couriers are scattered across town, and
orders expire (cold food is a failed delivery).  The script dispatches one
assignment round with every algorithm and reports fairness, throughput,
and which couriers would have gone home empty-handed under each policy.

Run:
    python examples/food_delivery.py
"""

from repro import (
    FGTSolver,
    GMissionConfig,
    GTASolver,
    IEGTSolver,
    MPTASolver,
    generate_gmission_like,
)
from repro.core.fairness import gini_coefficient, jain_index
from repro.vdps import build_catalog

EPSILON_KM = 0.6  # chain drop-offs at most 600 m apart (dense lunch zones)


def main() -> None:
    config = GMissionConfig(
        n_tasks=150,  # lunch orders in flight
        n_workers=18,  # couriers on shift
        n_delivery_points=40,  # k-means "micro-zones" of drop-off addresses
        expiry_min_hours=0.3,  # 18 minutes: hot food
        expiry_max_hours=0.9,
        max_delivery_points=3,
    )
    instance = generate_gmission_like(config, seed=2024)
    sub = instance.subproblems()[0]
    print(f"Lunch rush: {sub.describe()}")

    # Build the strategy space once; every dispatch policy shares it.
    catalog = build_catalog(sub, epsilon=EPSILON_KM)
    print(f"Strategy space: {catalog.describe()}\n")

    header = (
        f"{'policy':<6} {'P_dif':>8} {'avgP':>8} {'gini':>6} {'jain':>6} "
        f"{'orders':>7} {'idle couriers':>14}"
    )
    print(header)
    print("-" * len(header))
    for solver in (
        GTASolver(epsilon=EPSILON_KM),
        MPTASolver(epsilon=EPSILON_KM, node_budget=100_000),
        FGTSolver(epsilon=EPSILON_KM),
        IEGTSolver(epsilon=EPSILON_KM),
    ):
        result = solver.solve(sub, catalog=catalog, seed=11)
        a = result.assignment
        payoffs = a.payoffs
        idle = [p.worker.worker_id for p in a if not p.delivery_point_ids]
        print(
            f"{solver.name:<6} {a.payoff_difference:>8.3f} "
            f"{a.average_payoff:>8.3f} {gini_coefficient(payoffs):>6.3f} "
            f"{jain_index(payoffs):>6.3f} {a.assigned_task_count:>7d} "
            f"{len(idle):>14d}"
        )

    print(
        "\nReading: MPTA/GTA deliver the most orders per courier-hour but "
        "concentrate earnings (high Gini); IEGT spreads earnings most "
        "evenly — the retention argument the paper opens with."
    )


if __name__ == "__main__":
    main()
