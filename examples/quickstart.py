#!/usr/bin/env python
"""Quickstart: fair task assignment on a tiny hand-built delivery scenario.

Builds the smallest interesting FTA instance by hand — one distribution
center, five delivery points, two couriers — then compares the greedy
baseline (GTA) against the two fairness-aware game-theoretic solvers (FGT
and IEGT) on the paper's two effectiveness metrics.

Run:
    python examples/quickstart.py
"""

from repro import (
    DeliveryPoint,
    DistributionCenter,
    FGTSolver,
    GTASolver,
    IEGTSolver,
    Point,
    ProblemInstance,
    SpatialTask,
    TravelModel,
    Worker,
)


def build_instance() -> ProblemInstance:
    """A Figure-1-style scenario: one depot, five drop-off points, two couriers."""

    def dp(dp_id: str, x: float, y: float, n_tasks: int, expiry: float) -> DeliveryPoint:
        tasks = tuple(
            SpatialTask(f"{dp_id}_t{i}", dp_id, expiry=expiry) for i in range(n_tasks)
        )
        return DeliveryPoint(dp_id, Point(x, y), tasks)

    center = DistributionCenter(
        "depot",
        Point(2.0, 2.0),
        (
            dp("dp1", 1.0, 1.0, n_tasks=6, expiry=2.5),
            dp("dp2", 2.0, 0.5, n_tasks=3, expiry=4.0),
            dp("dp3", 3.0, 1.0, n_tasks=4, expiry=5.0),
            dp("dp4", 3.5, 2.0, n_tasks=2, expiry=5.0),
            dp("dp5", 4.0, 3.0, n_tasks=2, expiry=6.0),
        ),
    )
    workers = (
        Worker("w1", Point(1.0, 2.0), max_delivery_points=3, center_id="depot"),
        Worker("w2", Point(3.0, 1.0), max_delivery_points=3, center_id="depot"),
    )
    # Unit speed so travel times equal distances, as in the paper's example.
    return ProblemInstance((center,), workers, TravelModel(speed_kmh=1.0))


def main() -> None:
    instance = build_instance()
    print(instance.describe())
    sub = instance.subproblems()[0]

    print(f"\n{'solver':<6} {'payoff diff':>12} {'avg payoff':>12}  routes")
    for solver in (GTASolver(), FGTSolver(), IEGTSolver()):
        result = solver.solve(sub, seed=7)
        assignment = result.assignment
        routes = ", ".join(
            f"{wid}->{'+'.join(dps) if dps else 'idle'}"
            for wid, dps in assignment.as_mapping().items()
        )
        print(
            f"{solver.name:<6} {assignment.payoff_difference:>12.3f} "
            f"{assignment.average_payoff:>12.3f}  {routes}"
        )

    print(
        "\nGTA chases raw payoff and leaves one courier far behind; the "
        "game-theoretic solvers close most of that gap at a small average-"
        "payoff cost — the paper's Figure 1 in action."
    )


if __name__ == "__main__":
    main()
