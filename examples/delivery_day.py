#!/usr/bin/env python
"""A full simulated delivery day: repeated dispatch with different policies.

The paper solves one assignment instant; this example runs its solvers
inside the library's dispatch simulator for an 8-hour shift — tasks arrive
as a Poisson stream, couriers disappear while delivering and return at
their last drop-off — and compares the *long-run* outcomes that actually
drive courier retention: cumulative earning-rate gap, completion rate, and
how unevenly work was distributed.

Run:
    python examples/delivery_day.py
"""

from repro import GMissionConfig, GTASolver, IEGTSolver, MaxMinSolver, generate_gmission_like
from repro.sim import DispatchSimulator, PoissonTaskArrivals, SimConfig


def build_city(seed: int = 11):
    """Reuse the GM generator for the city layout (points + couriers)."""
    instance = generate_gmission_like(
        GMissionConfig(
            n_tasks=60,  # only the layout matters; arrivals are dynamic
            n_workers=12,
            n_delivery_points=30,
            expiry_min_hours=0.4,
            expiry_max_hours=1.2,
        ),
        seed=seed,
    )
    sub = instance.subproblems()[0]
    return sub.center, sub.workers, instance.travel


def main() -> None:
    center, workers, travel = build_city()
    arrivals = PoissonTaskArrivals(
        center.delivery_points,
        rate_per_hour=45.0,
        patience=(0.5, 1.2),
    )
    config = SimConfig(horizon_hours=8.0, round_interval_hours=0.5, epsilon=0.8)

    print(f"City: |DP|={len(center.delivery_points)} couriers={len(workers)} "
          f"arrivals=45/h for {config.horizon_hours:.0f}h\n")
    header = (
        f"{'policy':<7} {'completed':>9} {'expired':>8} {'completion':>11} "
        f"{'cum P_dif':>10} {'cum avgP':>9} {'idle all day':>13}"
    )
    print(header)
    print("-" * len(header))
    # The simulator prunes VDPS generation with config.epsilon; giving the
    # solvers the same epsilon keeps their display names consistent.
    for solver in (
        GTASolver(epsilon=config.epsilon),
        MaxMinSolver(epsilon=config.epsilon),
        IEGTSolver(epsilon=config.epsilon),
    ):
        simulator = DispatchSimulator(
            center, workers, arrivals, solver, travel=travel, config=config
        )
        report = simulator.run(seed=7)
        never_assigned = sum(1 for w in report.worker_states if w.assignments == 0)
        print(
            f"{solver.name:<7} {report.completed_tasks:>9d} "
            f"{report.expired_tasks:>8d} {report.completion_rate:>10.1%} "
            f"{report.cumulative_payoff_difference:>10.3f} "
            f"{report.cumulative_average_payoff:>9.3f} {never_assigned:>13d}"
        )

    print(
        "\nReading: over a whole shift the one-shot fairness of IEGT "
        "compounds — the cumulative earning-rate gap stays below the "
        "greedy policy's while throughput remains comparable."
    )


if __name__ == "__main__":
    main()
