#!/usr/bin/env python
"""Priority-aware dispatch: senior couriers earn proportionally more.

The paper's conclusion names priority-aware fairness as a future research
direction; this library implements it (see ``repro.core.priority``).  The
example gives three couriers seniority weights and compares the plain FGT
game against the priority-aware one: plain IAU pushes everyone toward
*equal* payoffs, while the priority-aware game pushes payoffs toward
*priority-proportional* shares.

Run:
    python examples/priority_dispatch.py
"""

from repro import (
    FGTSolver,
    GMissionConfig,
    PriorityModel,
    generate_gmission_like,
    payoff_difference,
    priority_payoff_difference,
)
from repro.vdps import build_catalog


def main() -> None:
    instance = generate_gmission_like(
        GMissionConfig(
            n_tasks=140,
            n_workers=10,
            n_delivery_points=35,
            expiry_min_hours=0.6,
            expiry_max_hours=1.8,
        ),
        seed=21,
    )
    sub = instance.subproblems()[0]
    catalog = build_catalog(sub, epsilon=0.8)

    # Seniority: w0 is a veteran (weight 3), w1 a trainee (weight 0.4).
    priorities = PriorityModel({"gm_w0": 3.0, "gm_w1": 0.4})

    # With beta <= 1 the IAU is strictly increasing in a worker's own
    # payoff, so best responses ignore the inequity terms entirely (see
    # DESIGN.md §5); beta = 1.5 makes guilt strong enough that workers
    # decline payoffs that put them too far ahead, which is where both the
    # plain and the priority-normalised inequity models start to bite.
    alpha, beta = 0.5, 1.5

    print(f"{sub.describe()}  (alpha={alpha}, beta={beta})\n")
    print(f"{'game':<15} {'plain P_dif':>12} {'priority P_dif':>15}  per-worker payoffs")
    for label, solver in (
        ("plain IAU", FGTSolver(epsilon=0.8, alpha=alpha, beta=beta)),
        (
            "priority-aware",
            FGTSolver(epsilon=0.8, alpha=alpha, beta=beta, priorities=priorities),
        ),
    ):
        result = solver.solve(sub, catalog=catalog, seed=13)
        assignment = result.assignment
        ids = [p.worker.worker_id for p in assignment]
        payoffs = assignment.payoffs
        plain = payoff_difference(payoffs)
        prio = priority_payoff_difference(payoffs, ids, priorities)
        shown = ", ".join(
            f"{wid.removeprefix('gm_')}={p:.2f}" for wid, p in zip(ids, payoffs)
        )
        print(f"{label:<15} {plain:>12.3f} {prio:>15.3f}  {shown}")

    print(
        "\nReading: the priority-aware game accepts a larger raw payoff "
        "spread in exchange for a smaller *priority-normalised* spread — "
        "the veteran ends up earning several times the trainee, which is "
        "what the seniority weights define as fair."
    )


if __name__ == "__main__":
    main()
