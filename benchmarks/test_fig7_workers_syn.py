"""Figure 7: effect of the number of workers |W| on the SYN dataset.

Same claims as Figure 6: fairness gap in favour of the game-theoretic
methods, payoff differences trending down with more workers for the
fairness-blind methods, IEGT stable.
"""

from conftest import run_figure_bench
from shapes import (
    assert_dominates_average_payoff,
    assert_monotone_trend,
    assert_mostly_fairer,
    assert_slowest,
)

from repro.experiments.figures import fig7_workers_syn


def test_fig7_workers_syn(benchmark, scale, strict):
    result = run_figure_bench(
        benchmark, "fig7_workers_syn", lambda: fig7_workers_syn(scale=scale, seed=0)
    )
    if not strict:
        return  # SMOKE grids are seed noise; tables above are the artefact
    assert_mostly_fairer(result, "IEGT", "GTA")
    assert_mostly_fairer(result, "FGT", "GTA")
    assert_dominates_average_payoff(result, "MPTA", ["GTA", "FGT", "IEGT"])
    assert_slowest(result, "MPTA", ["GTA", "FGT", "IEGT"])
    # More workers competing for the same tasks: greedy unfairness shrinks.
    assert_monotone_trend(result.series("payoff_difference", "GTA"), "down", 0.5)
