"""Figure 5: effect of the number of tasks |S| on the SYN dataset.

Same claims as Figure 4 at SYN scale: metrics grow with |S|, MPTA leads
average payoff, IEGT leads fairness, CPU roughly flat in |S|.
"""

from conftest import run_figure_bench
from shapes import (
    assert_dominates_average_payoff,
    assert_monotone_trend,
    assert_mostly_fairer,
    assert_slowest,
)

from repro.experiments.figures import fig5_tasks_syn


def test_fig5_tasks_syn(benchmark, scale, strict):
    result = run_figure_bench(
        benchmark, "fig5_tasks_syn", lambda: fig5_tasks_syn(scale=scale, seed=0)
    )
    if not strict:
        return  # SMOKE grids are seed noise; tables above are the artefact
    assert_mostly_fairer(result, "IEGT", "GTA")
    assert_mostly_fairer(result, "IEGT", "MPTA")
    assert_dominates_average_payoff(result, "MPTA", ["GTA", "FGT", "IEGT"])
    assert_slowest(result, "MPTA", ["GTA", "FGT", "IEGT"])
    assert_monotone_trend(result.series("average_payoff", "GTA"), "up")
