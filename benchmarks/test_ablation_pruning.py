"""Ablation: the distance-constrained pruning strategy in isolation.

DESIGN.md §5 calls out the subset-DP's three feasibility levers; this bench
isolates lever (a), epsilon pruning, by timing raw C-VDPS generation with
and without it on the same center and comparing state-space sizes.
"""

import time

from conftest import save_result
from repro.datasets.gmission import GMissionConfig, generate_gmission_like
from repro.experiments.report import format_series_table
from repro.vdps.generator import generate_cvdps


def _center():
    instance = generate_gmission_like(
        GMissionConfig(n_tasks=150, n_workers=10, n_delivery_points=60), seed=0
    )
    return instance.centers[0], instance.travel


def test_ablation_pruning_speedup(benchmark):
    center, travel = _center()

    def pruned():
        travel.clear_cache()
        return generate_cvdps(center, travel, epsilon=0.6, max_size=3)

    entries_pruned = benchmark(pruned)

    travel.clear_cache()
    t0 = time.perf_counter()
    entries_unpruned = generate_cvdps(center, travel, epsilon=None, max_size=3)
    unpruned_seconds = time.perf_counter() - t0

    rows = {
        "pruned(eps=0.6)": [float(len(entries_pruned))],
        "unpruned": [float(len(entries_unpruned))],
    }
    text = format_series_table(
        "Ablation: C-VDPS count, pruned vs unpruned (max_size=3)",
        ["count"],
        rows,
    )
    text += f"\n  unpruned generation took {unpruned_seconds:.3f}s wall"
    print()
    print(text)
    save_result("ablation_pruning", text)

    # Pruning must be sound (subset of unpruned) and actually prune.
    pruned_sets = {e.point_ids for e in entries_pruned}
    unpruned_sets = {e.point_ids for e in entries_unpruned}
    assert pruned_sets <= unpruned_sets
    assert len(pruned_sets) < len(unpruned_sets)
    # Singletons are never pruned.
    assert {s for s in pruned_sets if len(s) == 1} == {
        s for s in unpruned_sets if len(s) == 1
    }
