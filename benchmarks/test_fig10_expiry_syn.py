"""Figure 10: effect of the task expiration time e on the SYN dataset.

Paper claims (Section VII-B e): as deadlines relax, average payoffs and
CPU times first rise (more reachable points) then plateau once every
worker's reachable set stops growing; payoff differences rise then hold.
"""

from conftest import run_figure_bench
from shapes import assert_monotone_trend, assert_mostly_fairer

from repro.experiments.figures import fig10_expiry_syn


def test_fig10_expiry_syn(benchmark, scale, strict):
    # The paper drops MPTA's uncompetitive CPU time from this figure; we
    # keep its effectiveness panels out entirely for the same reason.
    result = run_figure_bench(
        benchmark,
        "fig10_expiry_syn",
        lambda: fig10_expiry_syn(scale=scale, seed=0, include_mpta=False),
    )
    if not strict:
        return  # SMOKE grids are seed noise; tables above are the artefact
    assert_mostly_fairer(result, "IEGT", "GTA")
    # Relaxed deadlines -> more reachable tasks -> higher average payoffs.
    assert_monotone_trend(result.series("average_payoff", "GTA"), "up", 0.5)
    # ... and a larger strategy space -> more CPU.
    assert_monotone_trend(result.series("cpu_seconds", "FGT"), "up", 0.5)
