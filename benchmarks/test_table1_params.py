"""Table I: the experiment parameter grid itself.

Regenerates the parameter table the paper reports (grids plus underlined
defaults) from the experiment configuration, so drift between DESIGN.md,
the harness, and the paper is caught mechanically.
"""

from conftest import save_result

from repro.experiments.config import GM_GRID, SYN_GRID, Scale


def _row(label, grid, default):
    cells = ", ".join(str(v) for v in grid)
    return f"  {label:45s} {cells}   [default {default}]"


def _render():
    gm = GM_GRID[Scale.CI]
    syn = SYN_GRID[Scale.PAPER]
    lines = ["Table I — experiment parameters (paper grids)"]
    lines.append(_row("Distance threshold eps (km) (GM)", gm.epsilon_grid, gm.epsilon_default))
    lines.append(_row("Distance threshold eps (km) (SYN)", syn.epsilon_grid, syn.epsilon_default))
    lines.append(_row("Number of tasks |S| (GM)", gm.tasks_grid, gm.tasks_default))
    lines.append(_row("Number of tasks |S| (SYN)", syn.tasks_grid, syn.tasks_default))
    lines.append(_row("Number of workers |W| (GM)", gm.workers_grid, gm.workers_default))
    lines.append(_row("Number of workers |W| (SYN)", syn.workers_grid, syn.workers_default))
    lines.append(_row("Number of delivery points |DP| (GM)", gm.dps_grid, gm.dps_default))
    lines.append(_row("Number of delivery points |DP| (SYN)", syn.dps_grid, syn.dps_default))
    lines.append(_row("Expiration time of tasks e (h) (SYN)", syn.expiry_grid, syn.expiry_default))
    lines.append(_row("Max acceptable delivery points maxDP (SYN)", syn.maxdp_grid, syn.maxdp_default))
    return "\n".join(lines)


def test_table1_params(benchmark):
    text = benchmark.pedantic(_render, rounds=1, iterations=1)
    print()
    print(text)
    save_result("table1_params", text)
    # Spot-check the underlined Table I values survived into the config.
    assert "[default 0.6]" in text
    assert "[default 2.0]" in text
    assert "100000" in text
    assert "[default 3]" in text
