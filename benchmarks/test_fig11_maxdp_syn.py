"""Figure 11: effect of maxDP on the SYN dataset.

Paper claims (Section VII-B f): the payoff differences of MPTA/GTA/FGT
grow with maxDP while IEGT stays low (13-59% of the others); average
payoffs rise with maxDP; the iterative game solvers cost more CPU than
single-pass GTA.
"""

from conftest import run_figure_bench
from shapes import (
    assert_monotone_trend,
    assert_mostly_fairer,
    fraction_where,
)

from repro.experiments.figures import fig11_maxdp_syn


def test_fig11_maxdp_syn(benchmark, scale, strict):
    result = run_figure_bench(
        benchmark,
        "fig11_maxdp_syn",
        lambda: fig11_maxdp_syn(scale=scale, seed=0, include_mpta=False),
    )
    if not strict:
        return  # SMOKE grids are seed noise; tables above are the artefact
    assert_mostly_fairer(result, "IEGT", "GTA")
    assert_mostly_fairer(result, "IEGT", "FGT")
    # Larger maxDP -> richer strategies -> higher average payoff.
    assert_monotone_trend(result.series("average_payoff", "GTA"), "up", 0.5)
    # Iterative solvers pay CPU over single-pass greedy at most points.
    assert fraction_where(result, "cpu_seconds", "GTA", "FGT") >= 0.5
