"""Ablation: early termination of the game iterations.

The paper's conclusion proposes "improv[ing] the game-theoretic
algorithm's efficiency by enabling early termination of iterations".  This
bench compares FGT with and without the patience-based early stop on the
same instance: rounds executed, fairness achieved, and CPU time.
"""

import time

from conftest import save_result
from repro.datasets.gmission import GMissionConfig, generate_gmission_like
from repro.experiments.report import format_series_table
from repro.games.fgt import FGTSolver
from repro.vdps.catalog import build_catalog


def _subproblem():
    instance = generate_gmission_like(
        GMissionConfig(
            n_tasks=200,
            n_workers=30,
            n_delivery_points=50,
            expiry_min_hours=0.6,
            expiry_max_hours=2.0,
        ),
        seed=4,
    )
    return instance.subproblems()[0]


def test_ablation_early_stop(benchmark):
    sub = _subproblem()
    catalog = build_catalog(sub, epsilon=0.8)

    def run(solver):
        t0 = time.process_time()
        result = solver.solve(sub, catalog=catalog, seed=6)
        return result, time.process_time() - t0

    full_result, full_cpu = benchmark.pedantic(
        lambda: run(FGTSolver(epsilon=0.8)), rounds=1, iterations=1
    )
    early_result, early_cpu = run(
        FGTSolver(epsilon=0.8, early_stop_patience=1, early_stop_tol=1e-3)
    )

    rows = {
        "full": [
            float(full_result.rounds),
            full_result.assignment.payoff_difference,
            full_result.assignment.average_payoff,
            full_cpu,
        ],
        "early-stop": [
            float(early_result.rounds),
            early_result.assignment.payoff_difference,
            early_result.assignment.average_payoff,
            early_cpu,
        ],
    }
    text = format_series_table(
        "Ablation: FGT early termination (patience=1, tol=1e-3)",
        ["rounds", "P_dif", "avgP", "cpu_s"],
        rows,
    )
    print()
    print(text)
    save_result("ablation_early_stop", text)

    assert early_result.rounds <= full_result.rounds
    # Early stop trades at most a modest amount of fairness for rounds.
    assert (
        early_result.assignment.payoff_difference
        <= full_result.assignment.payoff_difference * 2 + 1e-9
    )
