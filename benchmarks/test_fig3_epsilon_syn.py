"""Figure 3: effect of the pruning threshold epsilon on the SYN dataset.

Same claims as Figure 2 on the uniform synthetic data: pruning preserves
effectiveness beyond a knee epsilon (2 km in the paper) at a fraction of
the CPU cost.
"""

from conftest import run_figure_bench
from shapes import (
    assert_effectiveness_converges_to_unpruned,
    assert_pruned_faster_than_unpruned,
)

from repro.experiments.figures import fig3_epsilon_syn


def test_fig3_epsilon_syn(benchmark, scale, strict):
    result = run_figure_bench(
        benchmark, "fig3_epsilon_syn", lambda: fig3_epsilon_syn(scale=scale, seed=0)
    )
    if not strict:
        return  # SMOKE grids are seed noise; tables above are the artefact
    algorithms = [a for a in result.algorithms if not a.endswith("-W")]
    assert_pruned_faster_than_unpruned(result, algorithms)
    for algorithm in ("GTA", "FGT", "IEGT"):
        assert_effectiveness_converges_to_unpruned(result, algorithm)
