"""Shared infrastructure for the figure-reproduction benches.

Each bench regenerates one paper figure's data via the experiment harness,
prints the series next to the paper's qualitative claims, and saves the
table under ``benchmarks/results/`` so EXPERIMENTS.md can reference it.

Scale is controlled by the ``REPRO_BENCH_SCALE`` environment variable:
``ci`` (default: minutes total, paper per-center densities — the scale the
shape assertions are calibrated for), ``smoke`` (seconds; tables are
regenerated but the statistical shape assertions are skipped because the
tiny grids are seed noise), or ``paper`` (the literal Table I sizes;
hours).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.experiments.config import Scale

RESULTS_DIR = Path(__file__).parent / "results"


def bench_scale() -> Scale:
    name = os.environ.get("REPRO_BENCH_SCALE", "ci").lower()
    try:
        return Scale(name)
    except ValueError:
        valid = ", ".join(s.value for s in Scale)
        raise RuntimeError(f"REPRO_BENCH_SCALE must be one of {valid}, got {name!r}")


@pytest.fixture(scope="session")
def scale() -> Scale:
    return bench_scale()


@pytest.fixture(scope="session")
def strict(scale) -> bool:
    """Whether the qualitative shape assertions should be enforced.

    At SMOKE scale the grids have 2-3 points and single-digit worker
    counts, so trend comparisons are dominated by seed noise; the benches
    then only regenerate and print the tables.
    """
    return scale is not Scale.SMOKE


def save_result(name: str, text: str) -> None:
    """Persist a rendered table for EXPERIMENTS.md cross-referencing."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def run_figure_bench(benchmark, name: str, run_figure):
    """Benchmark one figure's experiment once, print and persist its table.

    Figure experiments are full parameter sweeps, so one timed round is the
    meaningful unit (pytest-benchmark's default multi-round sampling would
    re-run a multi-second sweep dozens of times).  Alongside the ASCII
    table, each metric panel is rendered as an SVG chart under
    ``benchmarks/results/`` for visual comparison with the paper, and the
    full sweep — including per-arm observability diagnostics (rounds,
    switches, catalog-cache hit rate, phase timings) — is dumped as
    ``{name}.json``.
    """
    from repro.experiments.report import format_sweep
    from repro.experiments.sweep import METRICS
    from repro.obs import METRICS as OBS_METRICS
    from repro.obs import reset_metrics
    from repro.viz.charts import render_sweep_chart

    reset_metrics()
    result = benchmark.pedantic(run_figure, rounds=1, iterations=1)
    text = format_sweep(result)
    print()
    print(text)
    save_result(name, text)
    RESULTS_DIR.mkdir(exist_ok=True)
    payload = result.as_dict()
    payload["metrics_snapshot"] = OBS_METRICS.snapshot()
    (RESULTS_DIR / f"{name}.json").write_text(
        json.dumps(payload, indent=2, default=float) + "\n"
    )
    for metric in METRICS:
        log_y = metric == "cpu_seconds" and all(
            v > 0
            for algorithm in result.algorithms
            for v in result.series(metric, algorithm)
        )
        svg = render_sweep_chart(result, metric, log_y=log_y)
        (RESULTS_DIR / f"{name}_{metric}.svg").write_text(svg)
    return result
