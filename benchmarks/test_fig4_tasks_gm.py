"""Figure 4: effect of the number of tasks |S| on the GM dataset.

Paper claims (Section VII-B b): payoff difference and average payoff both
grow with |S|; MPTA has the highest average payoff; IEGT's payoff
difference stays well below the fairness-blind baselines (18-35%); CPU
times are nearly flat in |S|.
"""

from conftest import run_figure_bench
from shapes import (
    assert_dominates_average_payoff,
    assert_monotone_trend,
    assert_mostly_fairer,
    assert_slowest,
)

from repro.experiments.figures import fig4_tasks_gm


def test_fig4_tasks_gm(benchmark, scale, strict):
    result = run_figure_bench(
        benchmark, "fig4_tasks_gm", lambda: fig4_tasks_gm(scale=scale, seed=0)
    )
    if not strict:
        return  # SMOKE grids are seed noise; tables above are the artefact
    assert_mostly_fairer(result, "IEGT", "GTA")
    assert_mostly_fairer(result, "IEGT", "MPTA")
    assert_mostly_fairer(result, "FGT", "GTA")
    assert_dominates_average_payoff(result, "MPTA", ["GTA", "FGT", "IEGT"])
    assert_slowest(result, "MPTA", ["GTA", "FGT", "IEGT"])
    assert_monotone_trend(result.series("average_payoff", "GTA"), "up")
