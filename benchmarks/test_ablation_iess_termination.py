"""Ablation: improved vs classic evolutionary termination (Section VI-C).

The paper improves the textbook evolutionary-equilibrium condition (all
payoffs equal) with "no one changes their strategy", because in FTA each
worker plays a *different* strategy with a different payoff and exact
equality never materialises.  This bench quantifies the difference: rounds
executed, convergence flag, and the resulting effectiveness.
"""

from conftest import save_result
from repro.datasets.gmission import GMissionConfig, generate_gmission_like
from repro.experiments.report import format_series_table
from repro.games.iegt import IEGTSolver
from repro.vdps.catalog import build_catalog


def _subproblem():
    instance = generate_gmission_like(
        GMissionConfig(
            n_tasks=160,
            n_workers=24,
            n_delivery_points=40,
            expiry_min_hours=0.6,
            expiry_max_hours=1.8,
        ),
        seed=9,
    )
    return instance.subproblems()[0]


def test_ablation_iess_termination(benchmark):
    sub = _subproblem()
    catalog = build_catalog(sub, epsilon=0.8)
    budget = 60

    def run(mode):
        solver = IEGTSolver(termination=mode, max_rounds=budget)
        return solver.solve(sub, catalog=catalog, seed=3)

    improved = benchmark.pedantic(lambda: run("improved"), rounds=1, iterations=1)
    classic = run("classic")

    rows = {
        "improved (paper)": [
            float(improved.rounds),
            float(improved.converged),
            improved.assignment.payoff_difference,
            improved.assignment.average_payoff,
        ],
        "classic ESS": [
            float(classic.rounds),
            float(classic.converged),
            classic.assignment.payoff_difference,
            classic.assignment.average_payoff,
        ],
    }
    text = format_series_table(
        f"Ablation: IEGT termination condition (round budget {budget})",
        ["rounds", "converged", "P_dif", "avgP"],
        rows,
    )
    print()
    print(text)
    save_result("ablation_iess_termination", text)

    # The improved condition terminates within budget; classic burns it.
    assert improved.converged
    assert improved.rounds <= classic.rounds
    # Both reach the same fixed point in effectiveness terms.
    assert improved.assignment.payoff_difference == classic.assignment.payoff_difference