"""Figure 9: effect of the number of delivery points |DP| on the SYN dataset.

Same claims as Figure 8 on SYN: payoff difference and average payoff both
trend down with more delivery points; MPTA's CPU time dwarfs the others.
"""

from conftest import run_figure_bench
from shapes import (
    assert_monotone_trend,
    assert_mostly_fairer,
    assert_slowest,
)

from repro.experiments.figures import fig9_dps_syn


def test_fig9_dps_syn(benchmark, scale, strict):
    result = run_figure_bench(
        benchmark, "fig9_dps_syn", lambda: fig9_dps_syn(scale=scale, seed=0)
    )
    if not strict:
        return  # SMOKE grids are seed noise; tables above are the artefact
    assert_mostly_fairer(result, "IEGT", "GTA")
    assert_slowest(result, "MPTA", ["GTA", "FGT", "IEGT"])
    assert_monotone_trend(result.series("average_payoff", "GTA"), "down", 0.5)
