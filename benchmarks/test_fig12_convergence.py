"""Figure 12: convergence of the game-theoretic approaches.

Paper claim (Section VII-B g): both FGT and IEGT converge to an
equilibrium.  We regenerate the per-round payoff-difference traces on both
datasets and check each trace terminates at a fixed point (a round with no
strategy switches).
"""

from conftest import save_result
from repro.experiments.figures import fig12_convergence
from repro.experiments.report import format_series_table


def _render(study):
    rows = {name: study.series(name) for name in study.traces}
    columns = list(range(1, 1 + max(len(s) for s in rows.values())))
    padded = {
        name: series + [series[-1]] * (len(columns) - len(series))
        for name, series in rows.items()
    }
    return format_series_table(
        f"{study.name}: payoff difference per round",
        columns,
        padded,
        column_header="round",
    )


def test_fig12_convergence_gm(benchmark, scale, strict):
    study = benchmark.pedantic(
        lambda: fig12_convergence(scale=scale, seed=0, dataset="gm"),
        rounds=1,
        iterations=1,
    )
    text = _render(study)
    print()
    print(text)
    save_result("fig12_convergence_gm", text)
    for name, trace in study.traces.items():
        assert trace.final.switches == 0, f"{name} did not reach a fixed point"


def test_fig12_convergence_syn(benchmark, scale, strict):
    study = benchmark.pedantic(
        lambda: fig12_convergence(scale=scale, seed=0, dataset="syn"),
        rounds=1,
        iterations=1,
    )
    text = _render(study)
    print()
    print(text)
    save_result("fig12_convergence_syn", text)
    for name, trace in study.traces.items():
        assert trace.final.switches == 0, f"{name} did not reach a fixed point"
