"""Figure 2: effect of the pruning threshold epsilon on the GM dataset.

Paper claims (Section VII-B a): with a suitable epsilon the pruned
algorithms match the unpruned ``-W`` variants' effectiveness while costing
far less CPU; payoff differences grow then flatten as epsilon increases.
"""

from conftest import run_figure_bench
from shapes import (
    assert_effectiveness_converges_to_unpruned,
    assert_pruned_faster_than_unpruned,
)

from repro.experiments.figures import fig2_epsilon_gm


def test_fig2_epsilon_gm(benchmark, scale, strict):
    result = run_figure_bench(
        benchmark, "fig2_epsilon_gm", lambda: fig2_epsilon_gm(scale=scale, seed=0)
    )
    if not strict:
        return  # SMOKE grids are seed noise; tables above are the artefact
    algorithms = [a for a in result.algorithms if not a.endswith("-W")]
    assert_pruned_faster_than_unpruned(result, algorithms)
    for algorithm in ("GTA", "FGT", "IEGT"):
        assert_effectiveness_converges_to_unpruned(result, algorithm)
