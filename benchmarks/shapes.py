"""Qualitative shape checks shared by the figure benches.

The reproduction target is the *shape* of each figure — who wins, by
roughly what factor, where trends flatten — not the paper's absolute
numbers (their substrate was a dual-Xeon testbed, ours is a simulator).
These helpers encode the claims of Section VII-B loosely enough to be
robust across seeds and scales.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.sweep import SweepResult


def fraction_where(result: SweepResult, metric: str, better: str, worse: str) -> float:
    """Fraction of grid points where ``better``'s metric <= ``worse``'s."""
    b = result.series(metric, better)
    w = result.series(metric, worse)
    wins = sum(1 for x, y in zip(b, w) if x <= y + 1e-12)
    return wins / len(b)


def assert_mostly_fairer(result: SweepResult, better: str, worse: str, threshold=0.6):
    """``better`` achieves lower payoff difference at most grid points."""
    frac = fraction_where(result, "payoff_difference", better, worse)
    assert frac >= threshold, (
        f"{better} should be fairer than {worse} at >= {threshold:.0%} of grid "
        f"points, got {frac:.0%} on {result.name}"
    )


def assert_dominates_average_payoff(
    result: SweepResult, best: str, others: Sequence[str], rel_tol: float = 0.05
):
    """``best`` has the highest average payoff at every grid point.

    ``rel_tol`` grants a small slack because our MPTA is a budget-bounded
    search, not an oracle: on rare grid points a game solver's dynamics
    can edge past the truncated search by a few percent.
    """
    best_series = result.series("average_payoff", best)
    for other in others:
        other_series = result.series("average_payoff", other)
        for value, b, o in zip(result.values, best_series, other_series):
            assert b >= o * (1 - rel_tol) - 1e-9, (
                f"{best} average payoff should dominate {other} "
                f"at {result.parameter}={value} on {result.name}: {b} < {o}"
            )


def assert_slowest(result: SweepResult, slow: str, others: Sequence[str], threshold=0.6):
    """``slow`` is the most CPU-hungry arm at most grid points."""
    slow_series = result.series("cpu_seconds", slow)
    for other in others:
        other_series = result.series("cpu_seconds", other)
        wins = sum(1 for s, o in zip(slow_series, other_series) if s >= o)
        frac = wins / len(slow_series)
        assert frac >= threshold, (
            f"{slow} should cost more CPU than {other} at >= {threshold:.0%} "
            f"of grid points, got {frac:.0%} on {result.name}"
        )


def assert_pruned_faster_than_unpruned(result: SweepResult, algorithms: Sequence[str]):
    """Pruned arms beat their ``-W`` twins on CPU at every epsilon."""
    for name in algorithms:
        pruned = result.series("cpu_seconds", name)
        unpruned = result.series("cpu_seconds", f"{name}-W")
        # The -W arm is epsilon-independent; compare its (constant) cost
        # against the pruned arm across the grid.
        wins = sum(1 for p, u in zip(pruned, unpruned) if p <= u + 1e-12)
        assert wins >= max(1, int(0.6 * len(pruned))), (
            f"{name} with pruning should usually be faster than {name}-W "
            f"on {result.name}"
        )


def assert_effectiveness_converges_to_unpruned(
    result: SweepResult, algorithm: str, rel_tol: float = 0.35
):
    """At the largest epsilon, the pruned arm's metrics approach the -W arm's.

    Figures 2-3's headline: beyond a knee epsilon, pruning changes nothing
    but CPU time.
    """
    for metric in ("payoff_difference", "average_payoff"):
        pruned = result.series(metric, algorithm)[-1]
        unpruned = result.series(metric, f"{algorithm}-W")[-1]
        scale = max(abs(unpruned), 1e-9)
        assert abs(pruned - unpruned) / scale <= rel_tol, (
            f"{algorithm} {metric} at max epsilon ({pruned:.4f}) should be "
            f"within {rel_tol:.0%} of {algorithm}-W ({unpruned:.4f}) "
            f"on {result.name}"
        )


def assert_monotone_trend(
    values: Sequence[float], direction: str, tolerance: float = 0.25
):
    """Series trends up/down overall: endpoints ordered, allowing local noise.

    ``tolerance`` allows the endpoint comparison to be violated by up to
    that fraction of the series' spread.
    """
    if len(values) < 3:
        return  # two points are pure noise; nothing to call a trend
    spread = max(values) - min(values)
    slack = tolerance * spread
    if direction == "up":
        assert values[-1] >= values[0] - slack, f"expected upward trend, got {values}"
    elif direction == "down":
        assert values[-1] <= values[0] + slack, f"expected downward trend, got {values}"
    else:
        raise ValueError(f"direction must be 'up' or 'down', got {direction!r}")
