"""Figure 6: effect of the number of workers |W| on the GM dataset.

Paper claims (Section VII-B c): the game-theoretic methods assign more
fairly than GTA at some efficiency cost; payoff differences of all methods
except IEGT decline as |W| grows; IEGT stays stable; MPTA has the highest
average payoff and the highest CPU cost.
"""

from conftest import run_figure_bench
from shapes import (
    assert_dominates_average_payoff,
    assert_mostly_fairer,
    assert_slowest,
)

from repro.experiments.figures import fig6_workers_gm


def test_fig6_workers_gm(benchmark, scale, strict):
    result = run_figure_bench(
        benchmark, "fig6_workers_gm", lambda: fig6_workers_gm(scale=scale, seed=0)
    )
    if not strict:
        return  # SMOKE grids are seed noise; tables above are the artefact
    assert_mostly_fairer(result, "IEGT", "GTA")
    assert_mostly_fairer(result, "FGT", "GTA")
    assert_dominates_average_payoff(result, "MPTA", ["GTA", "FGT", "IEGT"])
    assert_slowest(result, "MPTA", ["GTA", "FGT", "IEGT"])
