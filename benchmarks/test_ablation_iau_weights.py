"""Ablation: the IAU weights alpha/beta in the FGT game.

The paper fixes alpha = beta = 0.5 after trying other settings ("we have
found that FGT works well when they are set to 0.5").  This bench sweeps
the weights and reports payoff difference and average payoff, checking
that inequity aversion (any positive weights) beats a selfish game
(alpha = beta = 0) on fairness.
"""

from conftest import save_result
from repro.datasets.gmission import GMissionConfig, generate_gmission_like
from repro.experiments.report import format_series_table
from repro.games.fgt import FGTSolver
from repro.vdps.catalog import build_catalog

WEIGHTS = [0.0, 0.25, 0.5, 1.0, 2.0]


def _subproblem():
    instance = generate_gmission_like(
        GMissionConfig(n_tasks=120, n_workers=12, n_delivery_points=30), seed=1
    )
    return instance.subproblems()[0]


def test_ablation_iau_weights(benchmark):
    sub = _subproblem()
    catalog = build_catalog(sub, epsilon=0.6)

    def sweep():
        pdif, avgp = [], []
        for weight in WEIGHTS:
            solver = FGTSolver(alpha=weight, beta=weight, epsilon=0.6)
            result = solver.solve(sub, catalog=catalog, seed=3)
            pdif.append(result.assignment.payoff_difference)
            avgp.append(result.assignment.average_payoff)
        return pdif, avgp

    pdif, avgp = benchmark.pedantic(sweep, rounds=1, iterations=1)
    text = format_series_table(
        "Ablation: FGT IAU weights (alpha = beta)",
        WEIGHTS,
        {"payoff_difference": pdif, "average_payoff": avgp},
        column_header="alpha=beta",
    )
    print()
    print(text)
    save_result("ablation_iau_weights", text)

    selfish = pdif[0]
    averse = min(pdif[1:])
    assert averse <= selfish + 1e-9, (
        "inequity-averse FGT should not be less fair than the selfish game"
    )
