"""Figure 8: effect of the number of delivery points |DP| on the GM dataset.

Paper claims (Section VII-B d): payoff differences decline as |DP| grows
(more strategies to balance with); average payoffs also decline (fewer
tasks per point); MPTA's CPU dominates all others.
"""

from conftest import run_figure_bench
from shapes import (
    assert_monotone_trend,
    assert_mostly_fairer,
    assert_slowest,
)

from repro.experiments.figures import fig8_dps_gm


def test_fig8_dps_gm(benchmark, scale, strict):
    result = run_figure_bench(
        benchmark, "fig8_dps_gm", lambda: fig8_dps_gm(scale=scale, seed=0)
    )
    if not strict:
        return  # SMOKE grids are seed noise; tables above are the artefact
    assert_mostly_fairer(result, "IEGT", "GTA")
    assert_slowest(result, "MPTA", ["GTA", "FGT", "IEGT"])
    # Fewer tasks per point as |DP| grows: average payoff trends down.
    assert_monotone_trend(result.series("average_payoff", "GTA"), "down", 0.5)
