"""Extension bench: sensitivity of the results to the distance metric.

The paper uses Euclidean travel distances; city couriers move on street
grids, which Manhattan distance approximates better.  This bench re-runs
the default GM comparison under both metrics and checks the paper's
qualitative conclusions (fairness ordering) are metric-robust.
"""

from conftest import save_result
from repro.core.instance import ProblemInstance
from repro.datasets.gmission import GMissionConfig, generate_gmission_like
from repro.experiments.report import format_series_table
from repro.baselines.gta import GTASolver
from repro.games.fgt import FGTSolver
from repro.games.iegt import IEGTSolver
from repro.geo.travel import TravelModel
from repro.vdps.catalog import build_catalog

SOLVERS = (GTASolver(epsilon=0.6), FGTSolver(epsilon=0.6), IEGTSolver(epsilon=0.6))


def _instance_with_metric(metric):
    instance = generate_gmission_like(GMissionConfig(), seed=2)
    travel = TravelModel(speed_kmh=5.0, metric=metric)
    return ProblemInstance(instance.centers, instance.workers, travel)


def test_extension_metric_sensitivity(benchmark):
    def run_all():
        out = {}
        for metric in ("euclidean", "manhattan"):
            sub = _instance_with_metric(metric).subproblems()[0]
            catalog = build_catalog(sub, epsilon=0.6)
            out[metric] = {
                solver.name: solver.solve(sub, catalog=catalog, seed=5).assignment
                for solver in SOLVERS
            }
        return out

    assignments = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = {}
    for metric, by_solver in assignments.items():
        rows[f"P_dif ({metric})"] = [
            by_solver[name].payoff_difference for name in ("GTA", "FGT", "IEGT")
        ]
        rows[f"avgP ({metric})"] = [
            by_solver[name].average_payoff for name in ("GTA", "FGT", "IEGT")
        ]
    text = format_series_table(
        "Extension: distance-metric sensitivity (GM defaults)",
        ["GTA", "FGT", "IEGT"],
        rows,
    )
    print()
    print(text)
    save_result("extension_metric_sensitivity", text)

    # The fairness ordering is metric-robust: IEGT fairest under both.
    for metric, by_solver in assignments.items():
        assert (
            by_solver["IEGT"].payoff_difference
            <= by_solver["GTA"].payoff_difference + 1e-9
        ), f"IEGT should stay fairest under {metric}"
    # Manhattan distances are >= Euclidean, so payoffs cannot rise.
    for name in ("GTA",):
        assert (
            assignments["manhattan"][name].average_payoff
            <= assignments["euclidean"][name].average_payoff + 1e-9
        )
