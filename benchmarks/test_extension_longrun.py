"""Extension bench: long-run dispatch simulation (beyond the paper's scope).

The paper evaluates one assignment instant; deployed platforms loop it.
This bench runs the dispatch simulator for a working day per policy and
reports the *cumulative* analogues of the paper's metrics: earning-rate
gap (long-run P_dif), average earning rate, and completion rate.
"""

from conftest import save_result
from repro.baselines.gta import GTASolver
from repro.baselines.maxmin import MaxMinSolver
from repro.datasets.gmission import GMissionConfig, generate_gmission_like
from repro.experiments.report import format_series_table
from repro.games.iegt import IEGTSolver
from repro.sim import DispatchSimulator, PoissonTaskArrivals, SimConfig

POLICIES = (
    ("GTA", GTASolver(epsilon=0.8)),
    ("MAXMIN", MaxMinSolver(epsilon=0.8)),
    ("IEGT", IEGTSolver(epsilon=0.8)),
)


def _city(seed=11):
    instance = generate_gmission_like(
        GMissionConfig(
            n_tasks=60,
            n_workers=12,
            n_delivery_points=30,
            expiry_min_hours=0.4,
            expiry_max_hours=1.2,
        ),
        seed=seed,
    )
    sub = instance.subproblems()[0]
    return sub.center, sub.workers, instance.travel


def test_extension_longrun(benchmark):
    center, workers, travel = _city()
    arrivals = PoissonTaskArrivals(
        center.delivery_points, rate_per_hour=45.0, patience=(0.5, 1.2)
    )
    config = SimConfig(horizon_hours=8.0, round_interval_hours=0.5, epsilon=0.8)

    def run_all():
        reports = {}
        for name, solver in POLICIES:
            simulator = DispatchSimulator(
                center, workers, arrivals, solver, travel=travel, config=config
            )
            reports[name] = simulator.run(seed=7)
        return reports

    reports = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = {
        name: [
            report.cumulative_payoff_difference,
            report.cumulative_average_payoff,
            report.completion_rate,
            float(report.completed_tasks),
        ]
        for name, report in reports.items()
    }
    text = format_series_table(
        "Extension: 8h dispatch simulation (cumulative metrics)",
        ["cum_P_dif", "cum_avgP", "completion", "completed"],
        rows,
    )
    print()
    print(text)
    save_result("extension_longrun", text)

    # The one-shot fairness ordering survives the long run.
    assert (
        reports["IEGT"].cumulative_payoff_difference
        <= reports["GTA"].cumulative_payoff_difference + 1e-9
    )
    for report in reports.values():
        assert report.completed_tasks > 0
