# Convenience targets for the FTA reproduction.

.PHONY: install test verify trace serve chaos bench bench-smoke bench-figures bench-paper examples clean

install:
	pip install -e . --no-build-isolation || python setup.py develop

test:
	pytest tests/

# Run FGT+IEGT under the runtime invariant checkers (repro/verify/), then
# the verification test suite itself.
verify:
	python -m repro verify --experiment fig3 --seed 0
	pytest tests/verify tests/properties/test_metamorphic.py

# Trace the FGT hot loop into trace.jsonl and print the summary table.
trace:
	python -m repro trace --algo fgt --scale ci --seed 0 --output trace.jsonl

# Run the online dispatch service on a generated gMission-like city.
# Ctrl-C drains the in-flight round and dumps final metrics.
serve:
	python -m repro serve --algorithm fgt --epsilon 0.8 --seed 0

# The fault-tolerance suite: seeded chaos against the dispatch engine,
# journal crash recovery (including a real SIGKILL round trip), circuit
# breakers, and the fault-plan harness (docs/fault_tolerance.md).
chaos:
	pytest tests/service/test_chaos.py tests/service/test_recovery.py \
	    tests/service/test_journal.py tests/service/test_faults.py \
	    tests/service/test_breaker.py

# Core perf baseline: catalog build + FGT/IEGT solves through both
# best-response engines, written to BENCH_core.json (docs/performance.md).
bench:
	python -m repro bench --scale medium --output BENCH_core.json

bench-smoke:
	python -m repro bench --scale smoke --output BENCH_core.json

# The paper-figure benchmark suite (pytest-benchmark over the experiments).
bench-figures:
	pytest benchmarks/ --benchmark-only

bench-paper:
	REPRO_BENCH_SCALE=paper pytest benchmarks/ --benchmark-only

examples:
	@for f in examples/*.py; do echo "=== $$f ==="; python $$f || exit 1; done

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
